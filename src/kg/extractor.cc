#include "kg/extractor.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "common/cancel.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "query/join.h"

namespace mesa {

namespace {

// Recursively gathers properties of `entity` into `out`, following
// entity-valued predicates while hops remain. Attribute names compose as
// "leader_age" for hop-2 properties.
void GatherProperties(const TripleStore& store, EntityId entity,
                      const std::string& prefix, size_t hops_left,
                      std::map<std::string, std::vector<Value>>* out) {
  for (const Triple* t : store.PropertiesOf(entity)) {
    const std::string& pred = store.predicate_name(t->predicate);
    std::string name = prefix.empty() ? pred : prefix + "_" + pred;
    if (t->object.is_entity()) {
      // The entity's label is itself a (categorical) attribute value.
      (*out)[name].push_back(
          Value::String(store.entity(t->object.entity).label));
      if (hops_left > 1) {
        GatherProperties(store, t->object.entity, name, hops_left - 1, out);
      }
    } else {
      (*out)[name].push_back(t->object.literal);
    }
  }
}

// The same gathering through the resilient client. A Properties call that
// fails for good marks `*any_failure` and the walk keeps whatever other
// branches it can reach — partial extraction beats no extraction.
void GatherPropertiesClient(ResilientKgClient* client, EntityId entity,
                            const std::string& prefix, size_t hops_left,
                            std::map<std::string, std::vector<Value>>* out,
                            bool* any_failure) {
  Result<std::vector<KgProperty>> props = client->Properties(entity);
  if (!props.ok()) {
    *any_failure = true;
    return;
  }
  for (const KgProperty& p : *props) {
    std::string name = prefix.empty() ? p.predicate : prefix + "_" + p.predicate;
    if (p.is_entity) {
      (*out)[name].push_back(Value::String(p.entity_label));
      if (hops_left > 1) {
        GatherPropertiesClient(client, p.entity, name, hops_left - 1, out,
                               any_failure);
      }
    } else {
      (*out)[name].push_back(p.literal);
    }
  }
}

// Collapses a multi-valued attribute to a single Value.
Value CollapseValues(const std::vector<Value>& values,
                     AggregateFunction agg) {
  if (values.size() == 1) return values[0];
  bool all_numeric = true;
  for (const auto& v : values) {
    if (!v.is_numeric()) {
      all_numeric = false;
      break;
    }
  }
  if (all_numeric) {
    std::vector<double> nums;
    nums.reserve(values.size());
    for (const auto& v : values) nums.push_back(v.AsDouble());
    Result<double> r = ComputeAggregate(agg, nums);
    if (r.ok()) return Value::Double(*r);
    return Value::Null();
  }
  // Categorical one-to-many: deterministic representative.
  std::vector<std::string> texts;
  texts.reserve(values.size());
  for (const auto& v : values) texts.push_back(v.ToString());
  std::sort(texts.begin(), texts.end());
  return Value::String(texts.front());
}

// Per-key extraction output: attribute name -> collapsed value.
using ExtractedRows =
    std::vector<std::pair<std::string, std::map<std::string, Value>>>;

// Distinct non-null key values of a string column, sorted for determinism.
Result<std::set<std::string>> DistinctKeys(const Table& table,
                                           const std::string& column) {
  MESA_ASSIGN_OR_RETURN(const Column* keys, table.ColumnByName(column));
  if (keys->type() != DataType::kString) {
    return Status::InvalidArgument(
        "extraction column must be string-valued: " + column);
  }
  std::set<std::string> distinct;
  for (size_t r = 0; r < keys->size(); ++r) {
    if (keys->IsValid(r)) distinct.insert(keys->StringAt(r));
  }
  return distinct;
}

// Assembles the universal relation from per-key rows: decides each
// attribute's type (double if every observed value is numeric, else
// string) and materialises one row per key value.
Result<Table> AssembleUniversalRelation(const std::string& column,
                                        const ExtractedRows& rows,
                                        const std::set<std::string>& attr_names) {
  // Type inference is independent per attribute (double if every
  // observed value is numeric, else string), and the names are already
  // sorted, so inferring in parallel and keeping name order changes
  // nothing about the schema.
  const std::vector<std::string> names(attr_names.begin(), attr_names.end());
  std::vector<DataType> types(names.size(), DataType::kDouble);
  ParallelFor(0, names.size(), [&](size_t a) {
    CancelCheckpoint();
    for (const auto& [key, attrs] : rows) {
      (void)key;
      auto it = attrs.find(names[a]);
      if (it != attrs.end() && !it->second.is_numeric()) {
        types[a] = DataType::kString;
        return;
      }
    }
  });

  Schema schema;
  MESA_RETURN_IF_ERROR(schema.AddField({column, DataType::kString}));
  for (size_t a = 0; a < names.size(); ++a) {
    MESA_RETURN_IF_ERROR(schema.AddField({names[a], types[a]}));
  }
  std::vector<Column> cols;
  cols.emplace_back(DataType::kString);
  for (DataType type : types) cols.emplace_back(type);
  // Each column is a pure function of its own attribute's values in row
  // order, so materializing column-parallel emits exactly the appends of
  // the serial row-major loop.
  ParallelFor(0, cols.size(), [&](size_t c) {
    CancelCheckpoint();
    if (c == 0) {
      for (const auto& [key, attrs] : rows) {
        (void)attrs;
        cols[0].AppendString(key);
      }
      return;
    }
    const std::string& name = names[c - 1];
    const DataType type = types[c - 1];
    for (const auto& [key, attrs] : rows) {
      (void)key;
      auto it = attrs.find(name);
      if (it == attrs.end()) {
        cols[c].AppendNull();
      } else if (type == DataType::kDouble) {
        cols[c].AppendDouble(it->second.AsDouble());
      } else {
        cols[c].AppendString(it->second.ToString());
      }
    }
  });
  return Table::Make(std::move(schema), std::move(cols));
}

// Collapses one key's multi-valued properties into its output row's
// attribute map, recording each surviving attribute name.
std::map<std::string, Value> CollapseProps(
    std::map<std::string, std::vector<Value>>& props, AggregateFunction agg,
    std::set<std::string>* attr_names) {
  std::map<std::string, Value> collapsed;
  for (auto& [name, values] : props) {
    Value v = CollapseValues(values, agg);
    if (!v.is_null()) {
      collapsed.emplace(name, std::move(v));
      attr_names->insert(name);
    }
  }
  return collapsed;
}

// Per-value scan output. The scans below (serial or worker-sharded) fill
// one slot per distinct key value; AssembleSlots then replays the slots in
// sorted key order, so rows, attribute names, and stats come out exactly
// as the serial reference loop produces them regardless of how the scan
// was scheduled across threads.
struct ValueSlot {
  enum class Outcome { kNotFound, kAmbiguous, kLinked, kFailed };
  Outcome outcome = Outcome::kNotFound;
  bool any_failure = false;  ///< linked, but a property fetch failed.
  std::map<std::string, std::vector<Value>> props;
  ResilientKgClient::Counters counters;  ///< client shard path only.
};

// Fixed key chunk of the parallel slot replay; a constant so the chunk
// decomposition depends only on the key count.
constexpr size_t kAssembleChunkKeys = 256;
// Below this many keys the serial replay wins outright.
constexpr size_t kAssembleParallelThreshold = 512;

void AssembleSlots(const std::vector<std::string>& keys,
                   std::vector<ValueSlot>& slots, AggregateFunction agg,
                   ExtractionStats* stats, ExtractedRows* rows,
                   std::set<std::string>* attr_names) {
  // Replays one slot into its (precomputed) output row — exactly one row
  // per key, so rows are written by index — and tallies into
  // chunk-local stats/names that merge in chunk order below. Every
  // output is a pure per-key function plus an order-independent
  // reduction (integer sums, set union), so the parallel replay is
  // byte-identical to the serial one at any thread count.
  auto replay = [&](size_t i, ExtractionStats* st,
                    std::set<std::string>* names) {
    ValueSlot& slot = slots[i];
    std::map<std::string, Value> attrs;
    switch (slot.outcome) {
      case ValueSlot::Outcome::kFailed:
        ++st->values_failed;
        break;
      case ValueSlot::Outcome::kAmbiguous:
        ++st->values_ambiguous;
        break;
      case ValueSlot::Outcome::kNotFound:
        ++st->values_not_found;
        break;
      case ValueSlot::Outcome::kLinked:
        ++st->values_linked;
        if (slot.any_failure) ++st->values_failed;
        attrs = CollapseProps(slot.props, agg, names);
        break;
    }
    (*rows)[i] = {keys[i], std::move(attrs)};
  };

  rows->resize(keys.size());
  if (keys.size() < kAssembleParallelThreshold || !DataPlaneParallel()) {
    for (size_t i = 0; i < keys.size(); ++i) replay(i, stats, attr_names);
    return;
  }
  const size_t num_chunks =
      (keys.size() + kAssembleChunkKeys - 1) / kAssembleChunkKeys;
  std::vector<ExtractionStats> chunk_stats(num_chunks);
  std::vector<std::set<std::string>> chunk_names(num_chunks);
  ParallelFor(0, num_chunks, [&](size_t c) {
    CancelCheckpoint();
    const size_t lo = c * kAssembleChunkKeys;
    const size_t hi = std::min(keys.size(), lo + kAssembleChunkKeys);
    for (size_t i = lo; i < hi; ++i) {
      replay(i, &chunk_stats[c], &chunk_names[c]);
    }
  });
  for (size_t c = 0; c < num_chunks; ++c) {
    stats->values_linked += chunk_stats[c].values_linked;
    stats->values_ambiguous += chunk_stats[c].values_ambiguous;
    stats->values_not_found += chunk_stats[c].values_not_found;
    stats->values_failed += chunk_stats[c].values_failed;
    attr_names->insert(chunk_names[c].begin(), chunk_names[c].end());
  }
}

// Shared augmentation driver: extracts per column via `extract`, renames
// collisions, and left-joins the attributes onto the base table.
Result<AugmentResult> AugmentImpl(
    const Table& table, const std::vector<std::string>& columns,
    const std::function<Result<Table>(const std::string&, ExtractionStats*)>&
        extract) {
  AugmentResult out;
  out.table = table;
  for (const std::string& column : columns) {
    ExtractionStats stats;
    MESA_ASSIGN_OR_RETURN(Table extracted, extract(column, &stats));
    out.stats.values_total += stats.values_total;
    out.stats.values_linked += stats.values_linked;
    out.stats.values_ambiguous += stats.values_ambiguous;
    out.stats.values_not_found += stats.values_not_found;
    out.stats.values_failed += stats.values_failed;
    out.stats.lookups_retried += stats.lookups_retried;

    // Rename collisions with a column-specific prefix before joining.
    Schema renamed_schema;
    std::vector<Column> renamed_cols;
    MESA_RETURN_IF_ERROR(
        renamed_schema.AddField({column, DataType::kString}));
    renamed_cols.push_back(extracted.column(0));
    std::vector<std::string> final_names;
    for (size_t c = 1; c < extracted.num_columns(); ++c) {
      std::string name = extracted.schema().field(c).name;
      if (out.table.schema().Contains(name) ||
          std::find(out.extracted_columns.begin(),
                    out.extracted_columns.end(),
                    name) != out.extracted_columns.end()) {
        name = column + "." + name;
      }
      MESA_RETURN_IF_ERROR(renamed_schema.AddField(
          {name, extracted.schema().field(c).type}));
      renamed_cols.push_back(extracted.column(c));
      final_names.push_back(name);
    }
    MESA_ASSIGN_OR_RETURN(
        Table renamed,
        Table::Make(std::move(renamed_schema), std::move(renamed_cols)));
    MESA_ASSIGN_OR_RETURN(
        out.table, HashJoin(out.table, column, renamed, column,
                            {JoinType::kLeft, column + "."}));
    for (auto& name : final_names) {
      out.extracted_columns.push_back(std::move(name));
    }
    out.entity_tables.push_back(std::move(renamed));
  }
  out.stats.attributes_extracted = out.extracted_columns.size();
  MESA_COUNT_N("kg/values_total", out.stats.values_total);
  MESA_COUNT_N("kg/values_linked", out.stats.values_linked);
  MESA_COUNT_N("kg/values_ambiguous", out.stats.values_ambiguous);
  MESA_COUNT_N("kg/values_not_found", out.stats.values_not_found);
  MESA_COUNT_N("kg/values_failed", out.stats.values_failed);
  MESA_COUNT_N("kg/attributes_extracted", out.stats.attributes_extracted);
  return out;
}

}  // namespace

Result<Table> ExtractAttributes(const Table& table, const std::string& column,
                                const TripleStore& store,
                                const ExtractionOptions& options,
                                ExtractionStats* stats) {
  MESA_SPAN("kg/extract");
  MESA_ASSIGN_OR_RETURN(std::set<std::string> distinct,
                        DistinctKeys(table, column));
  const std::vector<std::string> keys(distinct.begin(), distinct.end());

  ExtractionStats local_stats;
  local_stats.values_total = keys.size();

  // Linking and flattening are independent per key value: the linker is
  // const over a const store, so one instance serves every worker.
  EntityLinker linker(&store, options.linker);
  std::vector<ValueSlot> slots(keys.size());
  auto process = [&](size_t i) {
    CancelCheckpoint();  // per-value extraction checkpoint
    ValueSlot& slot = slots[i];
    LinkResult link = linker.Link(keys[i]);
    if (!link.linked()) {
      slot.outcome = link.outcome == LinkOutcome::kAmbiguous
                         ? ValueSlot::Outcome::kAmbiguous
                         : ValueSlot::Outcome::kNotFound;
      return;
    }
    slot.outcome = ValueSlot::Outcome::kLinked;
    GatherProperties(store, *link.entity, "", options.hops, &slot.props);
  };
  if (DataPlaneParallel()) {
    ParallelFor(0, keys.size(), process, options.num_threads);
  } else {
    for (size_t i = 0; i < keys.size(); ++i) process(i);
  }

  ExtractedRows rows;
  std::set<std::string> attr_names;
  AssembleSlots(keys, slots, options.one_to_many_agg, &local_stats, &rows,
                &attr_names);
  local_stats.attributes_extracted = attr_names.size();
  if (stats != nullptr) *stats = local_stats;
  return AssembleUniversalRelation(column, rows, attr_names);
}

Result<Table> ExtractAttributes(const Table& table, const std::string& column,
                                ResilientKgClient* client,
                                const ExtractionOptions& options,
                                ExtractionStats* stats) {
  MESA_SPAN("kg/extract");
  MESA_ASSIGN_OR_RETURN(std::set<std::string> distinct,
                        DistinctKeys(table, column));
  const std::vector<std::string> keys(distinct.begin(), distinct.end());

  ExtractionStats local_stats;
  local_stats.values_total = keys.size();

  // Fills one slot through `c`, which may be the shared client (legacy
  // serial path) or a per-value shard.
  std::vector<ValueSlot> slots(keys.size());
  auto process = [&](ResilientKgClient* c, size_t i) {
    CancelCheckpoint();  // per-value extraction checkpoint
    ValueSlot& slot = slots[i];
    Result<LinkResult> link = c->Resolve(keys[i], options.linker);
    if (!link.ok()) {
      // The lookup itself died (deadline, permanent endpoint fault).
      // Degrade: keep the key with no attributes, count the failure.
      slot.outcome = ValueSlot::Outcome::kFailed;
      return;
    }
    if (!link->linked()) {
      slot.outcome = link->outcome == LinkOutcome::kAmbiguous
                         ? ValueSlot::Outcome::kAmbiguous
                         : ValueSlot::Outcome::kNotFound;
      return;
    }
    slot.outcome = ValueSlot::Outcome::kLinked;
    GatherPropertiesClient(c, *link->entity, "", options.hops, &slot.props,
                           &slot.any_failure);
  };

  if (client->SupportsSharding() && DataPlaneParallel()) {
    // Each distinct value gets its own shard client (fresh clock, breaker,
    // cache over a cloned endpoint), so its retry/jitter/fault sequence is
    // a pure function of the value — never of which thread ran it or what
    // other values did first. The shard path is taken at *every* thread
    // count (including 1) so results cannot depend on the pool size even
    // under fault plans.
    ParallelFor(
        0, keys.size(),
        [&](size_t i) {
          std::unique_ptr<ResilientKgClient> shard = client->CloneForShard();
          process(shard.get(), i);
          slots[i].counters = shard->counters();
        },
        options.num_threads);
    ResilientKgClient::Counters total;
    for (const ValueSlot& slot : slots) {
      total.calls += slot.counters.calls;
      total.attempts += slot.counters.attempts;
      total.calls_retried += slot.counters.calls_retried;
      total.failures += slot.counters.failures;
      total.cache_hits += slot.counters.cache_hits;
    }
    client->AbsorbCounters(total);
    local_stats.lookups_retried = static_cast<size_t>(total.calls_retried);
  } else {
    const ResilientKgClient::Counters before = client->counters();
    for (size_t i = 0; i < keys.size(); ++i) process(client, i);
    local_stats.lookups_retried = static_cast<size_t>(
        client->counters().calls_retried - before.calls_retried);
  }

  ExtractedRows rows;
  std::set<std::string> attr_names;
  AssembleSlots(keys, slots, options.one_to_many_agg, &local_stats, &rows,
                &attr_names);
  local_stats.attributes_extracted = attr_names.size();
  if (stats != nullptr) *stats = local_stats;

  if (local_stats.Coverage() < options.min_coverage) {
    char msg[160];
    std::snprintf(msg, sizeof(msg),
                  "KG coverage %.1f%% below floor %.1f%% on column '%s' "
                  "(%zu of %zu values failed)",
                  100.0 * local_stats.Coverage(),
                  100.0 * options.min_coverage, column.c_str(),
                  local_stats.values_failed, local_stats.values_total);
    return Status::Unavailable(msg);
  }
  return AssembleUniversalRelation(column, rows, attr_names);
}

Result<AugmentResult> AugmentTableFromKg(
    const Table& table, const std::vector<std::string>& columns,
    const TripleStore& store, const ExtractionOptions& options) {
  return AugmentImpl(table, columns,
                     [&](const std::string& column, ExtractionStats* stats) {
                       return ExtractAttributes(table, column, store, options,
                                                stats);
                     });
}

Result<AugmentResult> AugmentTableFromKg(
    const Table& table, const std::vector<std::string>& columns,
    ResilientKgClient* client, const ExtractionOptions& options) {
  return AugmentImpl(table, columns,
                     [&](const std::string& column, ExtractionStats* stats) {
                       return ExtractAttributes(table, column, client, options,
                                                stats);
                     });
}

}  // namespace mesa
