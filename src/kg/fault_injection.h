#ifndef MESA_KG_FAULT_INJECTION_H_
#define MESA_KG_FAULT_INJECTION_H_

/// Deterministic fault injection for KgEndpoint — the harness that makes
/// the remote-KG failure surface (timeouts, rate limits, truncated
/// responses, outages, latency) testable and exactly reproducible.
///
/// A FaultPlan is parsed from a small `key=value` grammar (see
/// docs/robustness.md), e.g.
///
///   "seed=42; timeout=0.15; rate_limit=0.1; latency=1:5;
///    properties.truncate=0.2"
///
/// Every fault decision is a pure function of
/// (plan seed, operation, argument, per-argument attempt number) — no
/// shared RNG sequence — so the same plan produces the same faults no
/// matter the thread count or call interleaving, and every retry of the
/// same call sees a fresh, independent draw (which is what lets retries
/// mask transient faults deterministically).

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "kg/endpoint.h"

namespace mesa {

/// Per-operation fault rates and injected latency. All rates in [0, 1].
struct FaultRates {
  // Transient classes — a later attempt may succeed.
  double timeout = 0.0;       ///< kDeadlineExceeded ("request timed out").
  double rate_limit = 0.0;    ///< kResourceExhausted ("rate limited").
  double unavailable = 0.0;   ///< kUnavailable ("service unavailable").
  double truncate = 0.0;      ///< kUnavailable ("truncated response").
  // Permanent classes — every attempt fails the same way.
  double malformed = 0.0;     ///< kInternal, per attempt ("malformed response").
  double fail_keys = 0.0;     ///< kInternal, per *argument*: this fraction of
                              ///< arguments is permanently broken.
  // Injected latency per attempt, drawn uniformly in [min, max] virtual ms.
  uint64_t latency_min_ms = 0;
  uint64_t latency_max_ms = 0;
};

/// A complete fault plan: default rates plus optional per-operation
/// overrides ("resolve", "properties", "describe").
struct FaultPlan {
  uint64_t seed = 1;
  FaultRates rates;
  std::map<std::string, FaultRates> per_op;

  /// True if any rate or latency is non-zero.
  bool has_faults() const;

  /// The rates in effect for `op` (override or default).
  const FaultRates& RatesFor(const std::string& op) const;

  /// Parses the plan grammar: `key=value` pairs separated by ';' or ',',
  /// whitespace ignored. Keys: seed, timeout, rate_limit, unavailable,
  /// truncate, malformed, fail_keys, latency (N or MIN:MAX, virtual ms) —
  /// each optionally prefixed "resolve." / "properties." / "describe.".
  static Result<FaultPlan> Parse(const std::string& text);

  /// Parses MESA_FAULT_PLAN; an empty/unset variable yields a no-fault
  /// plan, a malformed one is an error (a silently ignored typo would
  /// fake reliability).
  static Result<FaultPlan> FromEnv();
};

/// Wraps any endpoint with a FaultPlan. Each operation first draws its
/// injected latency (advancing the bound VirtualClock), then each fault
/// class in a fixed order; surviving calls are forwarded to the inner
/// endpoint. Fault totals are exposed for tests and the chaos harness.
class FaultInjectingEndpoint : public KgEndpoint {
 public:
  FaultInjectingEndpoint(std::shared_ptr<KgEndpoint> inner, FaultPlan plan);

  Result<LinkResult> Resolve(const std::string& text,
                             const EntityLinkerOptions& options) override;
  Result<std::vector<KgProperty>> Properties(EntityId id) override;
  Result<EntityInfo> Describe(EntityId id) override;
  const TripleStore* local_store() const override {
    return inner_->local_store();
  }
  void BindClock(VirtualClock* clock) override;

  /// Clones inner endpoint + plan. Fault draws are pure functions of
  /// (plan seed, op, argument, per-argument attempt number), and the clone
  /// starts with fresh attempt counts — so a shard replaying a value's
  /// call sequence from attempt 0 sees exactly the draws the serial path
  /// would have produced for that value.
  std::shared_ptr<KgEndpoint> CloneForShard() const override;

  struct Counters {
    uint64_t calls = 0;
    uint64_t faults = 0;  ///< attempts answered with an injected fault.
  };
  Counters counters() const;

 private:
  /// Injects latency and possibly a fault for attempt `op(arg)`.
  /// OK = no fault injected, forward to the inner endpoint.
  Status MaybeFault(const char* op, uint64_t arg_hash);

  std::shared_ptr<KgEndpoint> inner_;
  FaultPlan plan_;
  VirtualClock* clock_ = nullptr;

  // Per-(op, argument) attempt numbers, so each retry draws fresh.
  std::mutex mu_;
  std::unordered_map<uint64_t, uint64_t> attempt_counts_;

  std::atomic<uint64_t> calls_{0};
  std::atomic<uint64_t> faults_{0};
};

}  // namespace mesa

#endif  // MESA_KG_FAULT_INJECTION_H_
