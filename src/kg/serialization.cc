#include "kg/serialization.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace mesa {

namespace {

std::string EncodeLiteral(const Value& v) {
  switch (v.type()) {
    case DataType::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "d:%.17g", v.double_value());
      return buf;
    }
    case DataType::kInt64:
      return "i:" + std::to_string(v.int_value());
    case DataType::kBool:
      return v.bool_value() ? "b:1" : "b:0";
    case DataType::kString:
      return "s:" + v.string_value();
    case DataType::kNull:
      break;
  }
  return "s:";
}

Result<Value> DecodeLiteral(const std::string& text) {
  if (text.size() < 2 || text[1] != ':') {
    return Status::InvalidArgument("bad literal encoding: " + text);
  }
  std::string payload = text.substr(2);
  switch (text[0]) {
    case 'd': {
      double d = 0;
      if (!ParseDouble(payload, &d)) {
        return Status::InvalidArgument("bad double literal: " + payload);
      }
      return Value::Double(d);
    }
    case 'i': {
      int64_t i = 0;
      if (!ParseInt64(payload, &i)) {
        return Status::InvalidArgument("bad int literal: " + payload);
      }
      return Value::Int(i);
    }
    case 'b':
      return Value::Bool(payload == "1");
    case 's':
      return Value::String(payload);
    default:
      return Status::InvalidArgument("unknown literal tag: " + text);
  }
}

}  // namespace

std::string WriteKgString(const TripleStore& store) {
  std::ostringstream out;
  out << "# mesa-kg v1\n";
  for (EntityId id = 0; id < store.num_entities(); ++id) {
    const EntityInfo& e = store.entity(id);
    out << "E " << id << " " << e.type << "\t" << e.label << "\n";
  }
  // Aliases: FindByAlias indexes by alias string, which we cannot easily
  // enumerate; emit via normalised lookups would lose originals, so the
  // store exposes aliases through the per-entity listing below.
  for (EntityId id = 0; id < store.num_entities(); ++id) {
    for (const std::string& alias : store.AliasesOf(id)) {
      out << "A " << id << "\t" << alias << "\n";
    }
  }
  for (EntityId id = 0; id < store.num_entities(); ++id) {
    for (const Triple* t : store.PropertiesOf(id)) {
      const std::string& pred = store.predicate_name(t->predicate);
      if (t->object.is_entity()) {
        out << "G " << id << "\t" << pred << "\t" << t->object.entity
            << "\n";
      } else {
        out << "L " << id << "\t" << pred << "\t"
            << EncodeLiteral(t->object.literal) << "\n";
      }
    }
  }
  return out.str();
}

Result<TripleStore> ReadKgString(const std::string& text) {
  TripleStore store;
  size_t line_no = 0;
  std::istringstream in(text);
  std::string line;
  auto error = [&](const std::string& msg) {
    return Status::InvalidArgument(msg + " (line " + std::to_string(line_no) +
                                   ")");
  };
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view sv = StripWhitespace(line);
    if (sv.empty() || sv[0] == '#') continue;
    char kind = sv[0];
    std::string rest(sv.substr(2));
    switch (kind) {
      case 'E': {
        // "<id> <type>\t<label>"
        size_t tab = rest.find('\t');
        if (tab == std::string::npos) return error("E record missing tab");
        auto head = Split(rest.substr(0, tab), ' ');
        if (head.size() != 2) return error("bad E record head");
        int64_t id = 0;
        if (!ParseInt64(head[0], &id)) return error("bad entity id");
        if (static_cast<size_t>(id) != store.num_entities()) {
          return error("entity ids must be dense and in order");
        }
        MESA_RETURN_IF_ERROR(
            store.AddEntity(rest.substr(tab + 1), head[1]).status());
        break;
      }
      case 'A': {
        size_t tab = rest.find('\t');
        if (tab == std::string::npos) return error("A record missing tab");
        int64_t id = 0;
        if (!ParseInt64(rest.substr(0, tab), &id)) {
          return error("bad entity id");
        }
        MESA_RETURN_IF_ERROR(store.AddAlias(static_cast<EntityId>(id),
                                            rest.substr(tab + 1)));
        break;
      }
      case 'L': {
        auto parts = Split(rest, '\t');
        if (parts.size() != 3) return error("bad L record");
        int64_t id = 0;
        if (!ParseInt64(parts[0], &id)) return error("bad entity id");
        MESA_ASSIGN_OR_RETURN(Value v, DecodeLiteral(parts[2]));
        MESA_RETURN_IF_ERROR(store.AddLiteral(static_cast<EntityId>(id),
                                              parts[1], std::move(v)));
        break;
      }
      case 'G': {
        auto parts = Split(rest, '\t');
        if (parts.size() != 3) return error("bad G record");
        int64_t s = 0, o = 0;
        if (!ParseInt64(parts[0], &s) || !ParseInt64(parts[2], &o)) {
          return error("bad entity id in G record");
        }
        MESA_RETURN_IF_ERROR(store.AddEdge(static_cast<EntityId>(s), parts[1],
                                           static_cast<EntityId>(o)));
        break;
      }
      default:
        return error(std::string("unknown record kind '") + kind + "'");
    }
  }
  return store;
}

Status WriteKgFile(const TripleStore& store, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << WriteKgString(store);
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<TripleStore> ReadKgFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return ReadKgString(buf.str());
}

}  // namespace mesa
