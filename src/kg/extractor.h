#ifndef MESA_KG_EXTRACTOR_H_
#define MESA_KG_EXTRACTOR_H_

#include <string>

#include "common/result.h"
#include "kg/entity_linker.h"
#include "kg/resilient_client.h"
#include "kg/triple_store.h"
#include "query/aggregate.h"
#include "table/table.h"

namespace mesa {

/// Options for KG attribute extraction (Section 3.1 of the paper).
struct ExtractionOptions {
  /// How many hops to follow. 1 = literal properties of the linked entity;
  /// 2 adds literal properties of entity-valued properties ("Leader Age"),
  /// and so on.
  size_t hops = 1;
  /// Aggregation applied when a predicate has multiple numeric objects for
  /// one subject (the paper's one-to-many accommodation, e.g. "Avg
  /// Population size of Ethnic-Group").
  AggregateFunction one_to_many_agg = AggregateFunction::kAvg;
  /// Linker configuration (type filter, fuzzy matching).
  EntityLinkerOptions linker;
  /// Minimum acceptable KG coverage when extracting through a
  /// ResilientKgClient: the fraction of distinct key values whose lookups
  /// fully succeeded (1 - values_failed / values_total). Per-key failures
  /// degrade gracefully — extraction keeps whatever attributes it could
  /// fetch — but a coverage below this floor returns an error Status
  /// instead of a silently hollow table. 0 (the default) never errors.
  double min_coverage = 0.0;
  /// Concurrency cap for the per-value extraction scan (0 = the global
  /// pool size). Linking and property flattening are independent per
  /// distinct key value, so the scan shards the distinct-value dictionary
  /// across workers; results are assembled serially in sorted key order
  /// and are bit-identical at any thread count.
  size_t num_threads = 0;
};

/// Bookkeeping about one extraction run; feeds Table 1 and the appendix's
/// entity-linker discussion.
struct ExtractionStats {
  size_t values_total = 0;      ///< distinct key values seen.
  size_t values_linked = 0;     ///< resolved to an entity.
  size_t values_ambiguous = 0;  ///< dropped: several candidate entities.
  size_t values_not_found = 0;  ///< dropped: no candidate entity.
  size_t attributes_extracted = 0;  ///< columns in the result (minus key).
  /// Key values for which at least one KG lookup failed for good (after
  /// retries); their rows keep whatever attributes were fetched. Always 0
  /// on the raw TripleStore path.
  size_t values_failed = 0;
  /// Client calls that needed at least one retry during this extraction.
  size_t lookups_retried = 0;

  /// Failure-aware coverage: fraction of key values with no failed
  /// lookup. 1.0 when there were no values at all.
  double Coverage() const {
    return values_total == 0
               ? 1.0
               : 1.0 - static_cast<double>(values_failed) /
                           static_cast<double>(values_total);
  }
};

/// Extracts all KG properties for the distinct values of `column` in
/// `table` — the universal-relation flattening of Section 3.1. The result
/// has one row per distinct (linkable or not) key value; its first column
/// repeats `column` so a left HashJoin attaches the attributes to the base
/// table, leaving nulls for unlinked values and absent properties. Numeric
/// attribute columns come out as double, everything else as string; a
/// multi-valued predicate is aggregated per `one_to_many_agg` (numeric) or
/// resolved to its lexicographically first value (categorical).
Result<Table> ExtractAttributes(const Table& table, const std::string& column,
                                const TripleStore& store,
                                const ExtractionOptions& options = {},
                                ExtractionStats* stats = nullptr);

/// Same extraction, but against a (possibly remote, possibly faulty) KG
/// endpoint through the resilient client. Per-key lookup failures that
/// survive the retry policy are recorded in `stats->values_failed` and
/// extraction proceeds with the attributes it could fetch; only a
/// coverage below `options.min_coverage` fails the call. With a
/// fault-free endpoint the result is bit-identical to the raw
/// TripleStore overload.
Result<Table> ExtractAttributes(const Table& table, const std::string& column,
                                ResilientKgClient* client,
                                const ExtractionOptions& options = {},
                                ExtractionStats* stats = nullptr);

/// Extracts on several key columns at once (e.g. Flights extracts on
/// Airline and on Origin city) and joins every extracted attribute onto the
/// base table. Extracted columns are prefixed with "<column>." when needed
/// to stay unique. Returns the augmented table and the names of all
/// attached attribute columns.
struct AugmentResult {
  Table table;
  std::vector<std::string> extracted_columns;
  ExtractionStats stats;
  /// One per-entity table per extraction column (key column first, then the
  /// renamed attribute columns). Offline pruning runs on these — a wikiID
  /// is unique per *entity*, not per joined row, so the high-entropy filter
  /// only fires at this level.
  std::vector<Table> entity_tables;
};
Result<AugmentResult> AugmentTableFromKg(const Table& table,
                                         const std::vector<std::string>& columns,
                                         const TripleStore& store,
                                         const ExtractionOptions& options = {});

/// Client-backed augmentation (what the Mesa pipeline uses). Degrades
/// gracefully per key; see the client ExtractAttributes overload.
Result<AugmentResult> AugmentTableFromKg(const Table& table,
                                         const std::vector<std::string>& columns,
                                         ResilientKgClient* client,
                                         const ExtractionOptions& options = {});

}  // namespace mesa

#endif  // MESA_KG_EXTRACTOR_H_
