#include "kg/triple_store.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"

namespace mesa {

Result<EntityId> TripleStore::AddEntity(const std::string& label,
                                        const std::string& type) {
  if (by_label_.count(label) > 0) {
    return Status::AlreadyExists("entity label exists: " + label);
  }
  EntityId id = static_cast<EntityId>(entities_.size());
  entities_.push_back({label, type});
  by_label_.emplace(label, id);
  by_normalized_[NormalizeEntityName(label)].push_back(id);
  return id;
}

Status TripleStore::AddAlias(EntityId entity, const std::string& alias) {
  if (entity >= entities_.size()) {
    return Status::OutOfRange("bad entity id");
  }
  by_alias_[alias].push_back(entity);
  aliases_of_[entity].push_back(alias);
  auto& norm = by_normalized_[NormalizeEntityName(alias)];
  if (std::find(norm.begin(), norm.end(), entity) == norm.end()) {
    norm.push_back(entity);
  }
  return Status::OK();
}

PredicateId TripleStore::InternPredicate(const std::string& name) {
  auto it = predicate_ids_.find(name);
  if (it != predicate_ids_.end()) return it->second;
  PredicateId id = static_cast<PredicateId>(predicate_names_.size());
  predicate_names_.push_back(name);
  predicate_ids_.emplace(name, id);
  return id;
}

Status TripleStore::AddLiteral(EntityId subject, const std::string& predicate,
                               Value v) {
  if (subject >= entities_.size()) return Status::OutOfRange("bad subject");
  PredicateId pid = InternPredicate(predicate);
  by_subject_[subject].push_back(triples_.size());
  triples_.push_back({subject, pid, KgObject::Literal(std::move(v))});
  return Status::OK();
}

Status TripleStore::AddEdge(EntityId subject, const std::string& predicate,
                            EntityId object) {
  if (subject >= entities_.size() || object >= entities_.size()) {
    return Status::OutOfRange("bad entity id");
  }
  PredicateId pid = InternPredicate(predicate);
  by_subject_[subject].push_back(triples_.size());
  triples_.push_back({subject, pid, KgObject::Entity(object)});
  return Status::OK();
}

std::vector<const Triple*> TripleStore::PropertiesOf(EntityId entity) const {
  std::vector<const Triple*> out;
  auto it = by_subject_.find(entity);
  if (it == by_subject_.end()) return out;
  out.reserve(it->second.size());
  for (size_t idx : it->second) out.push_back(&triples_[idx]);
  return out;
}

std::optional<EntityId> TripleStore::FindByLabel(
    const std::string& label) const {
  auto it = by_label_.find(label);
  if (it == by_label_.end()) return std::nullopt;
  return it->second;
}

std::vector<EntityId> TripleStore::FindByAlias(const std::string& alias) const {
  std::vector<EntityId> out;
  auto lbl = by_label_.find(alias);
  if (lbl != by_label_.end()) out.push_back(lbl->second);
  auto it = by_alias_.find(alias);
  if (it != by_alias_.end()) {
    for (EntityId id : it->second) {
      if (std::find(out.begin(), out.end(), id) == out.end()) {
        out.push_back(id);
      }
    }
  }
  return out;
}

std::vector<std::string> TripleStore::AliasesOf(EntityId entity) const {
  auto it = aliases_of_.find(entity);
  if (it == aliases_of_.end()) return {};
  return it->second;
}

std::vector<EntityId> TripleStore::FindByNormalized(
    const std::string& text) const {
  auto it = by_normalized_.find(NormalizeEntityName(text));
  if (it == by_normalized_.end()) return {};
  return it->second;
}

std::vector<EntityId> TripleStore::EntitiesOfType(
    const std::string& type) const {
  std::vector<EntityId> out;
  for (EntityId id = 0; id < entities_.size(); ++id) {
    if (entities_[id].type == type) out.push_back(id);
  }
  return out;
}

std::vector<const Triple*> TripleStore::Match(
    const TriplePattern& pattern) const {
  std::vector<const Triple*> out;
  std::optional<PredicateId> pid;
  if (pattern.predicate.has_value()) {
    auto it = predicate_ids_.find(*pattern.predicate);
    if (it == predicate_ids_.end()) return out;  // unknown predicate
    pid = it->second;
  }
  auto matches = [&](const Triple& t) {
    if (pattern.subject.has_value() && t.subject != *pattern.subject) {
      return false;
    }
    if (pid.has_value() && t.predicate != *pid) return false;
    if (pattern.literal.has_value()) {
      if (t.object.is_entity() || !(t.object.literal == *pattern.literal)) {
        return false;
      }
    }
    if (pattern.object_entity.has_value()) {
      if (!t.object.is_entity() || t.object.entity != *pattern.object_entity) {
        return false;
      }
    }
    return true;
  };
  if (pattern.subject.has_value()) {
    // Use the subject index.
    auto it = by_subject_.find(*pattern.subject);
    if (it == by_subject_.end()) return out;
    for (size_t idx : it->second) {
      if (matches(triples_[idx])) out.push_back(&triples_[idx]);
    }
    return out;
  }
  for (const Triple& t : triples_) {
    if (matches(t)) out.push_back(&t);
  }
  return out;
}

std::vector<std::string> TripleStore::PredicatesOfType(
    const std::string& type) const {
  std::set<std::string> names;
  for (const auto& t : triples_) {
    if (entities_[t.subject].type == type) {
      names.insert(predicate_names_[t.predicate]);
    }
  }
  return {names.begin(), names.end()};
}

}  // namespace mesa
