#ifndef MESA_KG_TRIPLE_STORE_H_
#define MESA_KG_TRIPLE_STORE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "table/value.h"

namespace mesa {

/// Identifier of an entity node in the knowledge graph.
using EntityId = uint32_t;

/// Identifier of a predicate (property name) in the graph's dictionary.
using PredicateId = uint32_t;

/// The object of a triple: either a literal value or another entity
/// (entity-valued objects are what multi-hop extraction follows).
struct KgObject {
  enum class Kind { kLiteral, kEntity };
  Kind kind = Kind::kLiteral;
  Value literal;
  EntityId entity = 0;

  static KgObject Literal(Value v) {
    KgObject o;
    o.kind = Kind::kLiteral;
    o.literal = std::move(v);
    return o;
  }
  static KgObject Entity(EntityId e) {
    KgObject o;
    o.kind = Kind::kEntity;
    o.entity = e;
    return o;
  }
  bool is_entity() const { return kind == Kind::kEntity; }
};

/// One (subject, predicate, object) edge.
struct Triple {
  EntityId subject = 0;
  PredicateId predicate = 0;
  KgObject object;
};

/// Metadata of an entity node.
struct EntityInfo {
  std::string label;  ///< canonical human-readable label, unique.
  std::string type;   ///< class name, e.g. "Country", "City".
};

/// An in-memory RDF-style triple store with subject and label indexes —
/// the DBpedia stand-in. Predicates are interned strings; entities carry a
/// canonical label plus optional aliases (used by the NED linker to emulate
/// real-world surface-form variation such as "Russian Federation" vs
/// "Russia").
class TripleStore {
 public:
  TripleStore() = default;

  /// Creates an entity. Fails if the canonical label already exists.
  Result<EntityId> AddEntity(const std::string& label,
                             const std::string& type);

  /// Registers an extra surface form for an entity. Aliases may be
  /// ambiguous (shared by several entities); the linker handles that.
  Status AddAlias(EntityId entity, const std::string& alias);

  /// Interns a predicate name.
  PredicateId InternPredicate(const std::string& name);

  /// Adds a literal-valued triple.
  Status AddLiteral(EntityId subject, const std::string& predicate, Value v);

  /// Adds an entity-valued triple.
  Status AddEdge(EntityId subject, const std::string& predicate,
                 EntityId object);

  size_t num_entities() const { return entities_.size(); }
  size_t num_triples() const { return triples_.size(); }
  size_t num_predicates() const { return predicate_names_.size(); }

  const EntityInfo& entity(EntityId id) const { return entities_[id]; }
  const std::string& predicate_name(PredicateId id) const {
    return predicate_names_[id];
  }

  /// All triples whose subject is `entity`.
  std::vector<const Triple*> PropertiesOf(EntityId entity) const;

  /// Exact canonical-label lookup.
  std::optional<EntityId> FindByLabel(const std::string& label) const;

  /// All entities registered under `alias` (canonical labels are implicit
  /// aliases of themselves).
  std::vector<EntityId> FindByAlias(const std::string& alias) const;

  /// The aliases registered for one entity (not including its label).
  std::vector<std::string> AliasesOf(EntityId entity) const;

  /// All entities whose normalised label/alias equals the normalised query.
  std::vector<EntityId> FindByNormalized(const std::string& text) const;

  /// All entity ids of a given type.
  std::vector<EntityId> EntitiesOfType(const std::string& type) const;

  /// Distinct predicate names used on subjects of the given type.
  std::vector<std::string> PredicatesOfType(const std::string& type) const;

  /// Triple-pattern query (SPARQL-style basic graph pattern with a single
  /// triple): each unset field is a wildcard. Returns pointers into the
  /// store, valid until the next mutation.
  struct TriplePattern {
    std::optional<EntityId> subject;
    std::optional<std::string> predicate;
    /// Matches literal objects equal to this value.
    std::optional<Value> literal;
    /// Matches entity-valued objects pointing at this entity.
    std::optional<EntityId> object_entity;
  };
  std::vector<const Triple*> Match(const TriplePattern& pattern) const;

 private:
  std::vector<EntityInfo> entities_;
  std::vector<Triple> triples_;
  std::vector<std::string> predicate_names_;
  std::unordered_map<std::string, PredicateId> predicate_ids_;
  std::unordered_map<std::string, EntityId> by_label_;
  std::unordered_map<std::string, std::vector<EntityId>> by_alias_;
  std::unordered_map<EntityId, std::vector<std::string>> aliases_of_;
  std::unordered_map<std::string, std::vector<EntityId>> by_normalized_;
  std::unordered_map<EntityId, std::vector<size_t>> by_subject_;
};

}  // namespace mesa

#endif  // MESA_KG_TRIPLE_STORE_H_
