#ifndef MESA_KG_SERIALIZATION_H_
#define MESA_KG_SERIALIZATION_H_

#include <string>

#include "common/result.h"
#include "kg/triple_store.h"

namespace mesa {

/// Serialises a TripleStore to the "mesa-kg v1" text format — a simple
/// line-oriented encoding in the spirit of N-Triples, tab-separated so
/// labels and literals may contain spaces:
///
///   # mesa-kg v1
///   E <entity-id> <type> \t <label>
///   A <entity-id> \t <alias>
///   L <entity-id> \t <predicate> \t <typed-literal>
///   G <entity-id> \t <predicate> \t <object-entity-id>
///
/// Typed literals are "d:<double>", "i:<int64>", "b:0|1", or "s:<string>".
/// Entity ids are the store's dense ids, so a round trip preserves them.
std::string WriteKgString(const TripleStore& store);

/// Parses the mesa-kg v1 format. Lines starting with '#' are comments.
Result<TripleStore> ReadKgString(const std::string& text);

/// File variants.
Status WriteKgFile(const TripleStore& store, const std::string& path);
Result<TripleStore> ReadKgFile(const std::string& path);

}  // namespace mesa

#endif  // MESA_KG_SERIALIZATION_H_
