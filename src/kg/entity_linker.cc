#include "kg/entity_linker.h"

#include <limits>
#include <vector>

#include "common/string_util.h"

namespace mesa {

EntityLinker::EntityLinker(const TripleStore* store,
                           EntityLinkerOptions options)
    : store_(store), options_(std::move(options)) {}

bool EntityLinker::TypeOk(EntityId id) const {
  return options_.type_filter.empty() ||
         store_->entity(id).type == options_.type_filter;
}

LinkResult EntityLinker::Link(const std::string& text) const {
  LinkResult result;

  // 1. Exact canonical label.
  if (auto id = store_->FindByLabel(text); id.has_value() && TypeOk(*id)) {
    result.outcome = LinkOutcome::kExactLabel;
    result.entity = *id;
    return result;
  }

  // 2. Alias / normalised-form match — unique after the type filter.
  std::vector<EntityId> candidates;
  for (EntityId id : store_->FindByAlias(text)) {
    if (TypeOk(id)) candidates.push_back(id);
  }
  if (candidates.empty()) {
    for (EntityId id : store_->FindByNormalized(text)) {
      if (TypeOk(id)) candidates.push_back(id);
    }
  }
  if (candidates.size() == 1) {
    result.outcome = LinkOutcome::kAliasMatch;
    result.entity = candidates[0];
    return result;
  }
  if (candidates.size() > 1) {
    result.outcome = LinkOutcome::kAmbiguous;
    return result;
  }

  // 3. Fuzzy fallback over normalised labels of type-compatible entities.
  if (!options_.enable_fuzzy) {
    result.outcome = LinkOutcome::kNotFound;
    return result;
  }
  std::string norm = NormalizeEntityName(text);
  size_t best = std::numeric_limits<size_t>::max();
  std::vector<EntityId> best_ids;
  for (EntityId id = 0; id < store_->num_entities(); ++id) {
    if (!TypeOk(id)) continue;
    size_t d = EditDistance(norm, NormalizeEntityName(store_->entity(id).label));
    if (d > options_.max_edit_distance) continue;
    if (d < best) {
      best = d;
      best_ids.assign(1, id);
    } else if (d == best) {
      best_ids.push_back(id);
    }
  }
  if (best_ids.size() == 1) {
    result.outcome = LinkOutcome::kFuzzyMatch;
    result.entity = best_ids[0];
  } else if (best_ids.size() > 1) {
    result.outcome = LinkOutcome::kAmbiguous;
  } else {
    result.outcome = LinkOutcome::kNotFound;
  }
  return result;
}

}  // namespace mesa
