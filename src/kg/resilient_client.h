#ifndef MESA_KG_RESILIENT_CLIENT_H_
#define MESA_KG_RESILIENT_CLIENT_H_

/// ResilientKgClient is what the extraction pipeline actually talks to:
/// it wraps a KgEndpoint with
///
///   * the retry policy of common/retry.h (exponential backoff, seeded
///     jitter, per-call deadline budget),
///   * a shared circuit breaker (closed -> open -> half-open), and
///   * a positive/negative response cache. Small, high-leverage
///     responses are cached: Resolve results and permanently failed
///     lookups (a retry-exhausted transient failure is not cached, so a
///     later call may still succeed). Bulk payloads (Properties /
///     Describe) are deliberately NOT retained — they are cheap to
///     refetch next to the copy-and-hold cost of an unbounded payload
///     cache.
///
/// Every lookup is visible through the metrics layer: kg.lookups,
/// kg.lookup.retries, kg.lookup.failures, kg.cache.hits / kg.cache.misses,
/// kg.breaker.state and the kg.breaker.opened/half_open/closed transition
/// counters, plus the kg_lookup span. See docs/robustness.md and
/// docs/observability.md.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/retry.h"
#include "kg/endpoint.h"

namespace mesa {

/// Tuning of one client instance.
struct KgClientOptions {
  RetryOptions retry;
  BreakerOptions breaker = {/*failure_threshold=*/5, /*cooldown_ms=*/500,
                            /*metric_prefix=*/"kg.breaker"};
  /// Cache Resolve results and permanently failed responses.
  bool enable_cache = true;
};

class ResilientKgClient {
 public:
  explicit ResilientKgClient(std::shared_ptr<KgEndpoint> endpoint,
                             KgClientOptions options = {});

  /// The endpoint operations, made reliable-or-failed-for-good. Identical
  /// inputs return identical results regardless of thread count or call
  /// order (retry schedules are keyed on the call, not on shared state).
  Result<LinkResult> Resolve(const std::string& text,
                             const EntityLinkerOptions& options);
  Result<std::vector<KgProperty>> Properties(EntityId id);
  Result<EntityInfo> Describe(EntityId id);

  const TripleStore* local_store() const { return endpoint_->local_store(); }

  /// Cumulative bookkeeping; snapshot before/after a phase and subtract
  /// to attribute work (the extractor feeds ExtractionStats this way).
  struct Counters {
    uint64_t calls = 0;          ///< client-level calls (cache hits included).
    uint64_t attempts = 0;       ///< endpoint attempts made.
    uint64_t calls_retried = 0;  ///< calls needing at least one retry.
    uint64_t failures = 0;       ///< calls that ultimately failed.
    uint64_t cache_hits = 0;
  };
  Counters counters() const;

  /// True when the endpoint can be cloned for parallel per-value
  /// extraction shards (KgEndpoint::CloneForShard).
  bool SupportsSharding() const;

  /// A fresh client over a cloned endpoint: same options, own virtual
  /// clock / breaker / cache, zeroed counters. The extractor gives each
  /// distinct entity value its own shard client so the value's retry and
  /// fault sequence is a pure function of the value — identical at any
  /// thread count — then folds the shard counters back via
  /// AbsorbCounters. nullptr when the endpoint is not cloneable.
  std::unique_ptr<ResilientKgClient> CloneForShard() const;

  /// Adds `c` into this client's cumulative counters (shard absorption).
  void AbsorbCounters(const Counters& c);

  CircuitBreaker& breaker() { return breaker_; }
  VirtualClock& clock() { return clock_; }
  const KgClientOptions& options() const { return options_; }

 private:
  using CachedValue =
      std::variant<Status, LinkResult, std::vector<KgProperty>, EntityInfo>;

  /// Runs `attempt` (any callable returning Result<T>) under retry +
  /// breaker + cache. `call_key` is a 64-bit mix of the operation tag and
  /// its arguments; it keys both the response cache and the retry jitter
  /// stream. With the ~10^3–10^4 distinct lookups of one extraction the
  /// chance of a 64-bit collision aliasing two cache entries is
  /// negligible (birthday bound ~1e-12). `kCachePayload` opts the
  /// operation's *successful* responses into the cache; permanent
  /// failures are negatively cached either way.
  template <typename T, bool kCachePayload, typename Attempt>
  Result<T> Call(uint64_t call_key, const Attempt& attempt);

  std::shared_ptr<KgEndpoint> endpoint_;
  KgClientOptions options_;
  VirtualClock clock_;
  CircuitBreaker breaker_;

  mutable std::mutex cache_mu_;
  std::unordered_map<uint64_t, CachedValue> cache_;

  std::atomic<uint64_t> calls_{0};
  std::atomic<uint64_t> attempts_{0};
  std::atomic<uint64_t> calls_retried_{0};
  std::atomic<uint64_t> failures_{0};
  std::atomic<uint64_t> cache_hits_{0};
};

}  // namespace mesa

#endif  // MESA_KG_RESILIENT_CLIENT_H_
