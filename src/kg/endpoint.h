#ifndef MESA_KG_ENDPOINT_H_
#define MESA_KG_ENDPOINT_H_

/// KgEndpoint models the *remote* knowledge-graph service the paper's
/// system talks to (a live DBpedia SPARQL endpoint, Section 3.1). Unlike
/// TripleStore — an in-memory structure handing out pointers into itself —
/// an endpoint behaves like an RPC surface: every operation is fallible
/// (it returns Result), responses are owned copies (a remote cannot hand
/// out interior pointers), and implementations may inject latency or
/// faults. The extraction pipeline consumes endpoints through
/// ResilientKgClient (kg/resilient_client.h), which adds retry, circuit
/// breaking, and response caching; see docs/robustness.md.

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/retry.h"
#include "kg/entity_linker.h"
#include "kg/triple_store.h"

namespace mesa {

/// One property of an entity, as returned over the wire. Entity-valued
/// objects carry their label inline (the way a SPARQL SELECT would join
/// rdfs:label) so one-hop rendering needs no follow-up call.
struct KgProperty {
  std::string predicate;
  bool is_entity = false;
  Value literal;              ///< set when !is_entity.
  EntityId entity = 0;        ///< set when is_entity.
  std::string entity_label;   ///< label of the object entity.
};

/// Abstract remote KG service.
class KgEndpoint {
 public:
  virtual ~KgEndpoint() = default;

  /// Server-side named-entity resolution of one surface form (exact label,
  /// then alias/normalised, then fuzzy — what the DBpedia lookup service
  /// does). A failed *call* is a non-OK Result; an unresolvable *name* is
  /// an OK Result whose LinkResult reports kNotFound / kAmbiguous.
  virtual Result<LinkResult> Resolve(const std::string& text,
                                     const EntityLinkerOptions& options) = 0;

  /// All properties of one entity, in the store's stable insertion order.
  virtual Result<std::vector<KgProperty>> Properties(EntityId id) = 0;

  /// Metadata (label, type) of one entity.
  virtual Result<EntityInfo> Describe(EntityId id) = 0;

  /// The in-memory store backing this endpoint, or nullptr for a true
  /// remote. Escape hatch for offline analyses that enumerate the whole
  /// graph (Mesa::RankLinks) and for the raw-path benchmarks.
  virtual const TripleStore* local_store() const { return nullptr; }

  /// Binds the caller's virtual clock so the endpoint can charge injected
  /// latency against deadlines. Default: no clock needed.
  virtual void BindClock(VirtualClock* clock) { (void)clock; }

  /// A fresh endpoint equivalent to this one, for a parallel extraction
  /// shard: same answers and same per-argument fault behaviour, but no
  /// shared mutable state (clock binding, attempt bookkeeping) with the
  /// original. nullptr means "not cloneable" — the extractor then falls
  /// back to its serial shared-client loop.
  virtual std::shared_ptr<KgEndpoint> CloneForShard() const {
    return nullptr;
  }
};

/// The perfectly reliable endpoint: answers straight out of a TripleStore.
/// This is the seed reproduction's behaviour, now behind the RPC surface.
class LocalEndpoint : public KgEndpoint {
 public:
  /// `store` must outlive the endpoint.
  explicit LocalEndpoint(const TripleStore* store);

  Result<LinkResult> Resolve(const std::string& text,
                             const EntityLinkerOptions& options) override;
  Result<std::vector<KgProperty>> Properties(EntityId id) override;
  Result<EntityInfo> Describe(EntityId id) override;
  const TripleStore* local_store() const override { return store_; }
  std::shared_ptr<KgEndpoint> CloneForShard() const override {
    return std::make_shared<LocalEndpoint>(store_);
  }

 private:
  const TripleStore* store_;
};

}  // namespace mesa

#endif  // MESA_KG_ENDPOINT_H_
