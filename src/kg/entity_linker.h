#ifndef MESA_KG_ENTITY_LINKER_H_
#define MESA_KG_ENTITY_LINKER_H_

#include <optional>
#include <string>

#include "kg/triple_store.h"

namespace mesa {

/// How a surface form was resolved (or why it was not).
enum class LinkOutcome {
  kExactLabel,    ///< canonical label match.
  kAliasMatch,    ///< unique alias / normalised match.
  kFuzzyMatch,    ///< unique small-edit-distance match.
  kAmbiguous,     ///< several candidates, none dominant (paper's "Ronaldo").
  kNotFound,      ///< nothing close enough.
};

/// Result of linking one table value to the KG.
struct LinkResult {
  LinkOutcome outcome = LinkOutcome::kNotFound;
  std::optional<EntityId> entity;

  bool linked() const { return entity.has_value(); }
};

/// Options for the linker.
struct EntityLinkerOptions {
  /// Restrict candidates to this entity type ("" = any type).
  std::string type_filter;
  /// Maximum edit distance (over normalised forms) for the fuzzy fallback.
  size_t max_edit_distance = 2;
  /// Enable the fuzzy fallback at all.
  bool enable_fuzzy = true;
};

/// Named-entity-disambiguation stand-in (the paper plugs in an off-the-shelf
/// NED system; Section 3.1). Resolution order:
///   1. exact canonical label;
///   2. unique alias / normalised-form match;
///   3. unique fuzzy match within `max_edit_distance`.
/// Multiple equally good candidates yield kAmbiguous with no entity —
/// reproducing the linker failures discussed in the paper's appendix, which
/// are one source of missing values downstream.
class EntityLinker {
 public:
  explicit EntityLinker(const TripleStore* store,
                        EntityLinkerOptions options = {});

  /// Links one surface form.
  LinkResult Link(const std::string& text) const;

 private:
  bool TypeOk(EntityId id) const;

  const TripleStore* store_;
  EntityLinkerOptions options_;
};

}  // namespace mesa

#endif  // MESA_KG_ENTITY_LINKER_H_
