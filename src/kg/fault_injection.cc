#include "kg/fault_injection.h"

#include <cstdlib>

#include "common/rng.h"
#include "common/string_util.h"

namespace mesa {

namespace {

// Splits "a;b,c" on both separators, trimming whitespace, dropping empties.
std::vector<std::string> SplitPairs(const std::string& text) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (c == ';' || c == ',') {
      std::string_view trimmed = StripWhitespace(cur);
      if (!trimmed.empty()) out.emplace_back(trimmed);
      cur.clear();
    } else {
      cur += c;
    }
  }
  std::string_view trimmed = StripWhitespace(cur);
  if (!trimmed.empty()) out.emplace_back(trimmed);
  return out;
}

Status SetRate(FaultRates* rates, const std::string& key,
               const std::string& value) {
  if (key == "latency") {
    // N or MIN:MAX (virtual milliseconds).
    size_t colon = value.find(':');
    int64_t lo = 0, hi = 0;
    if (colon == std::string::npos) {
      if (!ParseInt64(value, &lo) || lo < 0) {
        return Status::InvalidArgument("bad latency value: " + value);
      }
      hi = lo;
    } else {
      if (!ParseInt64(value.substr(0, colon), &lo) ||
          !ParseInt64(value.substr(colon + 1), &hi) || lo < 0 || hi < lo) {
        return Status::InvalidArgument("bad latency range: " + value);
      }
    }
    rates->latency_min_ms = static_cast<uint64_t>(lo);
    rates->latency_max_ms = static_cast<uint64_t>(hi);
    return Status::OK();
  }
  double rate = 0.0;
  if (!ParseDouble(value, &rate) || rate < 0.0 || rate > 1.0) {
    return Status::InvalidArgument("fault rate for '" + key +
                                   "' must be in [0,1], got: " + value);
  }
  if (key == "timeout") {
    rates->timeout = rate;
  } else if (key == "rate_limit") {
    rates->rate_limit = rate;
  } else if (key == "unavailable") {
    rates->unavailable = rate;
  } else if (key == "truncate") {
    rates->truncate = rate;
  } else if (key == "malformed") {
    rates->malformed = rate;
  } else if (key == "fail_keys") {
    rates->fail_keys = rate;
  } else {
    return Status::InvalidArgument("unknown fault-plan key: " + key);
  }
  return Status::OK();
}

bool RatesHaveFaults(const FaultRates& r) {
  return r.timeout > 0 || r.rate_limit > 0 || r.unavailable > 0 ||
         r.truncate > 0 || r.malformed > 0 || r.fail_keys > 0 ||
         r.latency_max_ms > 0;
}

}  // namespace

bool FaultPlan::has_faults() const {
  if (RatesHaveFaults(rates)) return true;
  for (const auto& [op, r] : per_op) {
    (void)op;
    if (RatesHaveFaults(r)) return true;
  }
  return false;
}

const FaultRates& FaultPlan::RatesFor(const std::string& op) const {
  auto it = per_op.find(op);
  return it == per_op.end() ? rates : it->second;
}

Result<FaultPlan> FaultPlan::Parse(const std::string& text) {
  FaultPlan plan;
  for (const std::string& pair : SplitPairs(text)) {
    size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fault-plan entry is not key=value: " +
                                     pair);
    }
    std::string key(StripWhitespace(pair.substr(0, eq)));
    std::string value(StripWhitespace(pair.substr(eq + 1)));
    if (key == "seed") {
      int64_t seed = 0;
      if (!ParseInt64(value, &seed) || seed < 0) {
        return Status::InvalidArgument("bad fault-plan seed: " + value);
      }
      plan.seed = static_cast<uint64_t>(seed);
      continue;
    }
    size_t dot = key.find('.');
    if (dot == std::string::npos) {
      MESA_RETURN_IF_ERROR(SetRate(&plan.rates, key, value));
    } else {
      std::string op = key.substr(0, dot);
      if (op != "resolve" && op != "properties" && op != "describe") {
        return Status::InvalidArgument("unknown fault-plan operation: " + op);
      }
      // An op override starts from the defaults parsed so far.
      auto [it, inserted] = plan.per_op.emplace(op, plan.rates);
      (void)inserted;
      MESA_RETURN_IF_ERROR(SetRate(&it->second, key.substr(dot + 1), value));
    }
  }
  return plan;
}

Result<FaultPlan> FaultPlan::FromEnv() {
  const char* env = std::getenv("MESA_FAULT_PLAN");
  if (env == nullptr || *env == '\0') return FaultPlan{};
  auto plan = Parse(env);
  if (!plan.ok()) {
    return Status::InvalidArgument("MESA_FAULT_PLAN: " +
                                   plan.status().message());
  }
  return plan;
}

FaultInjectingEndpoint::FaultInjectingEndpoint(
    std::shared_ptr<KgEndpoint> inner, FaultPlan plan)
    : inner_(std::move(inner)), plan_(std::move(plan)) {}

void FaultInjectingEndpoint::BindClock(VirtualClock* clock) {
  clock_ = clock;
  inner_->BindClock(clock);
}

std::shared_ptr<KgEndpoint> FaultInjectingEndpoint::CloneForShard() const {
  std::shared_ptr<KgEndpoint> inner = inner_->CloneForShard();
  if (!inner) return nullptr;
  return std::make_shared<FaultInjectingEndpoint>(std::move(inner), plan_);
}

Status FaultInjectingEndpoint::MaybeFault(const char* op, uint64_t arg_hash) {
  calls_.fetch_add(1, std::memory_order_relaxed);
  const FaultRates& rates = plan_.RatesFor(op);
  const uint64_t op_key = MixSeed(StableHash64(op), arg_hash);

  uint64_t attempt;
  {
    std::lock_guard<std::mutex> lock(mu_);
    attempt = attempt_counts_[op_key]++;
  }
  // One independent deterministic stream per (op, argument, attempt).
  Rng rng(MixSeed(MixSeed(plan_.seed, op_key), attempt));

  if (clock_ != nullptr && rates.latency_max_ms > 0) {
    clock_->AdvanceMs(rates.latency_min_ms +
                      rng.NextBelow(rates.latency_max_ms -
                                    rates.latency_min_ms + 1));
  }

  Status fault = Status::OK();
  // Permanently broken arguments: the draw ignores the attempt number,
  // so every retry of the same argument fails identically.
  if (rates.fail_keys > 0.0 &&
      Rng(MixSeed(plan_.seed, MixSeed(op_key, 0x9E37ULL))).NextBernoulli(
          rates.fail_keys)) {
    fault = Status::Internal(std::string(op) + ": permanently failing key");
  } else if (rng.NextBernoulli(rates.timeout)) {
    fault = Status::DeadlineExceeded(std::string(op) + ": request timed out");
  } else if (rng.NextBernoulli(rates.rate_limit)) {
    fault = Status::ResourceExhausted(std::string(op) + ": rate limited");
  } else if (rng.NextBernoulli(rates.unavailable)) {
    fault = Status::Unavailable(std::string(op) + ": service unavailable");
  } else if (rng.NextBernoulli(rates.truncate)) {
    fault = Status::Unavailable(std::string(op) + ": truncated response");
  } else if (rng.NextBernoulli(rates.malformed)) {
    fault = Status::Internal(std::string(op) + ": malformed response");
  }
  if (!fault.ok()) faults_.fetch_add(1, std::memory_order_relaxed);
  return fault;
}

Result<LinkResult> FaultInjectingEndpoint::Resolve(
    const std::string& text, const EntityLinkerOptions& options) {
  MESA_RETURN_IF_ERROR(MaybeFault("resolve", StableHash64(text)));
  return inner_->Resolve(text, options);
}

Result<std::vector<KgProperty>> FaultInjectingEndpoint::Properties(
    EntityId id) {
  MESA_RETURN_IF_ERROR(MaybeFault("properties", id));
  return inner_->Properties(id);
}

Result<EntityInfo> FaultInjectingEndpoint::Describe(EntityId id) {
  MESA_RETURN_IF_ERROR(MaybeFault("describe", id));
  return inner_->Describe(id);
}

FaultInjectingEndpoint::Counters FaultInjectingEndpoint::counters() const {
  Counters c;
  c.calls = calls_.load(std::memory_order_relaxed);
  c.faults = faults_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace mesa
