#include "kg/resilient_client.h"

#include "common/metrics.h"
#include "common/rng.h"

namespace mesa {

ResilientKgClient::ResilientKgClient(std::shared_ptr<KgEndpoint> endpoint,
                                     KgClientOptions options)
    : endpoint_(std::move(endpoint)),
      options_(std::move(options)),
      breaker_(options_.breaker) {
  endpoint_->BindClock(&clock_);
}

template <typename T, bool kCachePayload, typename Attempt>
Result<T> ResilientKgClient::Call(uint64_t call_key, const Attempt& attempt) {
  MESA_SPAN("kg_lookup");
  MESA_COUNT("kg.lookups");
  calls_.fetch_add(1, std::memory_order_relaxed);

  if (options_.enable_cache) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = cache_.find(call_key);
    if (it != cache_.end()) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      MESA_COUNT("kg.cache.hits");
      if (std::holds_alternative<Status>(it->second)) {
        failures_.fetch_add(1, std::memory_order_relaxed);
        return std::get<Status>(it->second);
      }
      return std::get<T>(it->second);
    }
    MESA_COUNT("kg.cache.misses");
  }

  // The payload of the last successful attempt; RetryCall only sees the
  // Status so the loop stays type-agnostic.
  T payload{};
  auto one_attempt = [&]() -> Status {
    attempts_.fetch_add(1, std::memory_order_relaxed);
    Result<T> r = attempt();
    if (!r.ok()) return r.status();
    payload = std::move(r).value();
    return Status::OK();
  };
  RetryResult rr =
      RetryCall(options_.retry, &clock_, &breaker_, call_key, one_attempt);
  if (rr.retried) {
    calls_retried_.fetch_add(1, std::memory_order_relaxed);
    MESA_COUNT_N("kg.lookup.retries", rr.attempts - 1);
    MESA_COUNT("kg.lookup.calls_retried");
  }

  if (!rr.status.ok()) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    MESA_COUNT("kg.lookup.failures");
    // Negative cache: only failures that cannot heal (a retryable code
    // here means the budget ran out — the service may still recover).
    if (options_.enable_cache && !IsRetryable(rr.status.code())) {
      std::lock_guard<std::mutex> lock(cache_mu_);
      cache_.emplace(call_key, rr.status);
    }
    return rr.status;
  }
  if (kCachePayload && options_.enable_cache) {
    std::lock_guard<std::mutex> lock(cache_mu_);
    cache_.emplace(call_key, payload);  // copy: the original is returned
  }
  return std::move(payload);
}

namespace {
// Per-operation key tags, folded at compile time.
constexpr uint64_t kResolveTag = StableHash64("resolve");
constexpr uint64_t kPropertiesTag = StableHash64("properties");
constexpr uint64_t kDescribeTag = StableHash64("describe");
}  // namespace

Result<LinkResult> ResilientKgClient::Resolve(
    const std::string& text, const EntityLinkerOptions& options) {
  // The linker configuration is part of the response identity.
  uint64_t key = MixSeed(kResolveTag, StableHash64(text));
  key = MixSeed(key, StableHash64(options.type_filter));
  key = MixSeed(key, static_cast<uint64_t>(options.max_edit_distance) * 2 +
                         (options.enable_fuzzy ? 1 : 0));
  return Call<LinkResult, /*kCachePayload=*/true>(
      key, [&] { return endpoint_->Resolve(text, options); });
}

Result<std::vector<KgProperty>> ResilientKgClient::Properties(EntityId id) {
  return Call<std::vector<KgProperty>, /*kCachePayload=*/false>(
      MixSeed(kPropertiesTag, id), [&] { return endpoint_->Properties(id); });
}

Result<EntityInfo> ResilientKgClient::Describe(EntityId id) {
  return Call<EntityInfo, /*kCachePayload=*/false>(
      MixSeed(kDescribeTag, id), [&] { return endpoint_->Describe(id); });
}

bool ResilientKgClient::SupportsSharding() const {
  return endpoint_->CloneForShard() != nullptr;
}

std::unique_ptr<ResilientKgClient> ResilientKgClient::CloneForShard() const {
  std::shared_ptr<KgEndpoint> endpoint = endpoint_->CloneForShard();
  if (!endpoint) return nullptr;
  return std::make_unique<ResilientKgClient>(std::move(endpoint), options_);
}

void ResilientKgClient::AbsorbCounters(const Counters& c) {
  calls_.fetch_add(c.calls, std::memory_order_relaxed);
  attempts_.fetch_add(c.attempts, std::memory_order_relaxed);
  calls_retried_.fetch_add(c.calls_retried, std::memory_order_relaxed);
  failures_.fetch_add(c.failures, std::memory_order_relaxed);
  cache_hits_.fetch_add(c.cache_hits, std::memory_order_relaxed);
}

ResilientKgClient::Counters ResilientKgClient::counters() const {
  Counters c;
  c.calls = calls_.load(std::memory_order_relaxed);
  c.attempts = attempts_.load(std::memory_order_relaxed);
  c.calls_retried = calls_retried_.load(std::memory_order_relaxed);
  c.failures = failures_.load(std::memory_order_relaxed);
  c.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace mesa
