#include "kg/endpoint.h"

namespace mesa {

LocalEndpoint::LocalEndpoint(const TripleStore* store) : store_(store) {}

Result<LinkResult> LocalEndpoint::Resolve(const std::string& text,
                                          const EntityLinkerOptions& options) {
  EntityLinker linker(store_, options);
  return linker.Link(text);
}

Result<std::vector<KgProperty>> LocalEndpoint::Properties(EntityId id) {
  if (id >= store_->num_entities()) {
    return Status::NotFound("no entity with id " + std::to_string(id));
  }
  auto triples = store_->PropertiesOf(id);
  std::vector<KgProperty> out;
  out.reserve(triples.size());
  for (const Triple* t : triples) {
    KgProperty p;
    p.predicate = store_->predicate_name(t->predicate);
    if (t->object.is_entity()) {
      p.is_entity = true;
      p.entity = t->object.entity;
      p.entity_label = store_->entity(t->object.entity).label;
    } else {
      p.literal = t->object.literal;
    }
    out.push_back(std::move(p));
  }
  return out;
}

Result<EntityInfo> LocalEndpoint::Describe(EntityId id) {
  if (id >= store_->num_entities()) {
    return Status::NotFound("no entity with id " + std::to_string(id));
  }
  return store_->entity(id);
}

}  // namespace mesa
