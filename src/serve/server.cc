#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/cancel.h"
#include "common/metrics.h"

namespace mesa {
namespace serve {
namespace {

/// Extra time Drain waits past the budget for in-flight requests to
/// actually unwind: a cancelled explain still has to reach its next
/// checkpoint and write the error reply.
constexpr uint64_t kDrainGraceNs = 500'000'000;  // 500 ms

/// Writes all of `data` to `fd`, riding out EINTR and partial writes.
bool WriteAll(int fd, const char* data, size_t size) {
  while (size > 0) {
    ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += static_cast<size_t>(n);
    size -= static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(Router* router, ServerOptions options)
    : router_(router), options_(std::move(options)) {}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already started");
  }

  in_addr addr{};
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr) != 1) {
    return Status::InvalidArgument("bad bind address '" + options_.host + "'");
  }
  // Loopback-only by policy: the daemon speaks an unauthenticated
  // protocol and must not be reachable off-host.
  if ((ntohl(addr.s_addr) >> 24) != 127) {
    return Status::InvalidArgument(
        "mesa_serve binds loopback only (got '" + options_.host + "')");
  }

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in bind_addr{};
  bind_addr.sin_family = AF_INET;
  bind_addr.sin_addr = addr;
  bind_addr.sin_port = htons(options_.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&bind_addr),
             sizeof(bind_addr)) != 0) {
    Status status = Status::IOError("bind " + options_.host + ":" +
                                    std::to_string(options_.port) + ": " +
                                    std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, options_.listen_backlog) != 0) {
    Status status =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    Status status =
        Status::IOError(std::string("getsockname: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  {
    // A previous Shutdown() leaves shutdown_requested_ set; clear it so
    // the server is restartable (running() is documented as "between a
    // successful Start and Shutdown").
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_requested_ = false;
  }
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load(std::memory_order_acquire)) return;
      // ECONNABORTED (peer reset before we accepted) is routine; EMFILE/
      // ENFILE-class errors mean fd pressure from live connections, which
      // clears as handlers finish — back off briefly instead of silently
      // killing the accept loop while the daemon looks alive.
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        continue;
      }
      // Shutdown() shut the listening socket down; any other error on a
      // closed/broken listener also ends the loop.
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    MESA_COUNT("serve/connections");

    std::vector<std::unique_ptr<Connection>> finished;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_requested_) {
        ::close(fd);
        return;
      }
      finished = ExtractFinished();
      auto connection = std::make_unique<Connection>();
      Connection* raw = connection.get();
      raw->fd = fd;
      connections_.push_back(std::move(connection));
      raw->thread = std::thread([this, raw] { HandleConnection(raw); });
    }
    // Join outside mu_: a finishing handler may be blocked acquiring mu_
    // (RequestShutdown); joining it while holding the lock would deadlock.
    for (auto& connection : finished) {
      connection->thread.join();
      if (connection->fd >= 0) ::close(connection->fd);
    }
  }
}

bool Server::AnyConnectionBusy() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& connection : connections_) {
    if (connection->busy.load(std::memory_order_acquire)) return true;
  }
  return false;
}

std::vector<std::unique_ptr<Server::Connection>> Server::ExtractFinished() {
  // Caller holds mu_. Moves done connections out of connections_ for the
  // caller to join and close after releasing the lock; live connections
  // stay. The joiner closes the fd: the handler itself never does, so
  // Shutdown() can safely ::shutdown any fd still present in
  // connections_ without racing a close/reuse.
  std::vector<std::unique_ptr<Connection>> finished;
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load(std::memory_order_acquire) &&
        (*it)->thread.joinable()) {
      finished.push_back(std::move(*it));
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
  return finished;
}

void Server::HandleConnection(Connection* connection) {
  const int fd = connection->fd;
  std::string buffer;
  char chunk[4096];
  bool discarding = false;  // oversized line: drop bytes until '\n'.
  bool request_shutdown = false;

  auto oversized_reply = [&] {
    std::string reply = router_->ErrorReplyLine(
        "invalid_argument",
        "request line exceeds " + std::to_string(options_.max_line_bytes) +
            " bytes");
    reply += '\n';
    return WriteAll(fd, reply.data(), reply.size());
  };

  for (;;) {
    // Drain complete lines from the buffer first.
    size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (discarding) {
        // The tail of a line whose head we already rejected.
        discarding = false;
        continue;
      }
      if (line.empty()) continue;  // blank keep-alive lines are ignored.
      if (line.size() > options_.max_line_bytes) {
        // A complete line can arrive over the limit when its newline lands
        // in the same recv chunk that crossed it; enforce the exact bound.
        if (!oversized_reply()) goto done;
        continue;
      }
      connection->busy.store(true, std::memory_order_release);
      Router::HandleResult result = router_->Handle(line);
      result.reply_line += '\n';
      // Record the accepted shutdown before the write: a client that sends
      // `shutdown` and disconnects without reading the reply must still
      // bring the daemon down (the router already replied shutting_down).
      if (result.shutdown) request_shutdown = true;
      const bool wrote =
          WriteAll(fd, result.reply_line.data(), result.reply_line.size());
      connection->busy.store(false, std::memory_order_release);
      if (!wrote || request_shutdown) goto done;
    }

    if (!discarding && buffer.size() > options_.max_line_bytes) {
      if (!oversized_reply()) goto done;
      buffer.clear();
      discarding = true;
    } else if (discarding) {
      buffer.clear();  // still inside the oversized line.
    }

    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) goto done;  // peer closed, or Shutdown() unblocked us.
    buffer.append(chunk, static_cast<size_t>(n));
  }

done:
  // No close here: the thread that joins us (AcceptLoop / Shutdown)
  // closes the fd, so a concurrent Shutdown can never ::shutdown a
  // recycled descriptor.
  //
  // Publishing done must be this thread's LAST action: once the flag is
  // visible, the accept loop may extract and join us, so nothing after
  // the store may block (RequestShutdown takes mu_, which the joiner
  // could be holding).
  if (request_shutdown) RequestShutdown();
  connection->done.store(true, std::memory_order_release);
}

void Server::RequestShutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_requested_ = true;
  shutdown_cv_.notify_all();
}

void Server::Wait() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
  }
  Shutdown();
}

void Server::Drain(uint64_t budget_ms) {
  if (!running_.load(std::memory_order_acquire)) return;
  MESA_COUNT("serve/drain_started");
  const uint64_t start_ns = CancelClockNowNs();

  // Stop the accept loop WITHOUT waking Wait(): shutting the listening
  // socket down fails the blocked accept, and with running_ still true
  // the loop exits instead of retrying — new connections are refused
  // while live handlers keep their sockets (their in-flight replies must
  // still be delivered, which a full Shutdown here would forfeit).
  ::shutdown(listen_fd_, SHUT_RDWR);

  // Shed every explain that has not been admitted yet.
  router_->admission().SetMaxInflight(0);

  // Give in-flight explains the drain budget: each token's deadline is
  // tightened (never extended), so a request either completes inside the
  // budget or unwinds at its next cancellation checkpoint.
  const uint64_t deadline_ns = start_ns + budget_ms * 1'000'000ULL;
  router_->CancelInflight(deadline_ns);

  bool clean = false;
  const uint64_t give_up_ns = deadline_ns + kDrainGraceNs;
  for (;;) {
    // Both conditions matter: a request leaves the in-flight registry
    // before its handler writes the reply, and the busy flag covers that
    // tail so teardown never severs a reply in flight.
    if (router_->inflight_requests() == 0 && !AnyConnectionBusy()) {
      clean = true;
      break;
    }
    if (CancelClockNowNs() >= give_up_ns) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  if (clean) {
    MESA_COUNT("serve/drain_clean");
  } else {
    MESA_COUNT("serve/drain_timeout");
  }
  MESA_RECORD("serve/drain_ns", CancelClockNowNs() - start_ns);

  // Full teardown (idempotent). A request that outlived even the grace
  // period is still cancelled — its handler joins at the next checkpoint.
  Shutdown();
}

void Server::Shutdown() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  RequestShutdown();

  // Unblock accept(): shutdown() on a listening socket makes a blocked
  // accept return on Linux; close alone would not.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  // Unblock every connection's recv, then join. New connections cannot
  // appear (the accept loop is gone).
  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(mu_);
    connections.swap(connections_);
  }
  for (auto& connection : connections) {
    if (connection->fd >= 0) ::shutdown(connection->fd, SHUT_RDWR);
  }
  for (auto& connection : connections) {
    if (connection->thread.joinable()) connection->thread.join();
    if (connection->fd >= 0) ::close(connection->fd);
  }
}

}  // namespace serve
}  // namespace mesa
