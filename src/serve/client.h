#ifndef MESA_SERVE_CLIENT_H_
#define MESA_SERVE_CLIENT_H_

/// Blocking client for the mesa_serve wire protocol (docs/serving.md).
/// One connection, one request in flight at a time; the tests and the
/// workload harness drive concurrency by opening one client per thread.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "serve/json.h"

namespace mesa {
namespace serve {

class Client {
 public:
  /// Connects to a daemon on localhost.
  static Result<std::unique_ptr<Client>> Connect(uint16_t port,
                                                 const std::string& host =
                                                     "127.0.0.1");
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one raw request line (no newline) and returns the raw reply
  /// line. The transport's only framing rule: one line out, one line in.
  Result<std::string> CallRaw(const std::string& request_line);

  /// Sends a request object and parses the reply object.
  Result<JsonValue> Call(const JsonValue& request);

  /// Everything an explain reply carries. When ok is false, code/error
  /// describe the failure (e.g. "resource_exhausted" from admission) —
  /// the call itself still succeeds at the transport level.
  struct ExplainReply {
    bool ok = false;
    std::string trace_id;
    std::string code;    ///< wire code when !ok ("resource_exhausted", ...).
    std::string error;   ///< message when !ok.
    std::string report;  ///< the mesa_cli-identical report text.
    std::vector<std::string> explanation;
    double base_cmi = 0.0;
    double final_cmi = 0.0;
    double coverage = 1.0;
    uint64_t values_failed = 0;
  };

  /// explain verb. `subgroups` optionally names refinement attributes
  /// (appends the subgroup section to the report, as `mesa_cli
  /// --subgroups` does).
  Result<ExplainReply> Explain(const std::string& dataset,
                               const std::string& sql,
                               const std::vector<std::string>& subgroups = {});

  /// status verb: the raw reply object.
  Result<JsonValue> GetStatus();

  /// metrics verb: the embedded metrics snapshot, serialized (the
  /// docs/observability.md JSON schema plus the traces array).
  Result<std::string> MetricsJson();

  /// shutdown verb. The daemon replies, then tears itself down.
  Status Shutdown();

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_;
  std::string buffer_;  ///< bytes past the last reply line.
};

}  // namespace serve
}  // namespace mesa

#endif  // MESA_SERVE_CLIENT_H_
