#ifndef MESA_SERVE_CLIENT_H_
#define MESA_SERVE_CLIENT_H_

/// Blocking client for the mesa_serve wire protocol (docs/serving.md).
/// One connection, one request in flight at a time; the tests and the
/// workload harness drive concurrency by opening one client per thread.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "serve/json.h"

namespace mesa {
namespace serve {

/// Transport timeouts. 0 = no timeout (block indefinitely), the
/// pre-timeout behaviour. A timeout that fires surfaces as
/// kDeadlineExceeded from the call; the connection is then unusable
/// (request/reply framing may be mid-line).
struct ClientOptions {
  uint64_t connect_timeout_ms = 10000;
  uint64_t read_timeout_ms = 0;
  uint64_t write_timeout_ms = 0;
};

class Client {
 public:
  /// Connects to a daemon on localhost.
  static Result<std::unique_ptr<Client>> Connect(uint16_t port,
                                                 const std::string& host =
                                                     "127.0.0.1",
                                                 ClientOptions options = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one raw request line (no newline) and returns the raw reply
  /// line. The transport's only framing rule: one line out, one line in.
  Result<std::string> CallRaw(const std::string& request_line);

  /// Sends a request object and parses the reply object.
  Result<JsonValue> Call(const JsonValue& request);

  /// Everything an explain reply carries. When ok is false, code/error
  /// describe the failure (e.g. "resource_exhausted" from admission) —
  /// the call itself still succeeds at the transport level.
  struct ExplainReply {
    bool ok = false;
    std::string trace_id;
    std::string code;    ///< wire code when !ok ("resource_exhausted", ...).
    std::string error;   ///< message when !ok.
    std::string report;  ///< the mesa_cli-identical report text.
    std::vector<std::string> explanation;
    double base_cmi = 0.0;
    double final_cmi = 0.0;
    double coverage = 1.0;
    uint64_t values_failed = 0;
  };

  /// explain verb. `subgroups` optionally names refinement attributes
  /// (appends the subgroup section to the report, as `mesa_cli
  /// --subgroups` does). `deadline_ms` > 0 asks the daemon to abandon
  /// the request once that budget elapses server-side (the reply then
  /// carries code "deadline_exceeded"); 0 sends no deadline field.
  Result<ExplainReply> Explain(const std::string& dataset,
                               const std::string& sql,
                               const std::vector<std::string>& subgroups = {},
                               uint64_t deadline_ms = 0);

  /// status verb: the raw reply object.
  Result<JsonValue> GetStatus();

  /// metrics verb: the embedded metrics snapshot, serialized (the
  /// docs/observability.md JSON schema plus the traces array).
  Result<std::string> MetricsJson();

  /// shutdown verb. The daemon replies, then tears itself down.
  Status Shutdown();

 private:
  Client(int fd, ClientOptions options) : fd_(fd), options_(options) {}

  int fd_;
  ClientOptions options_;
  std::string buffer_;  ///< bytes past the last reply line.
};

}  // namespace serve
}  // namespace mesa

#endif  // MESA_SERVE_CLIENT_H_
