#ifndef MESA_SERVE_JSON_H_
#define MESA_SERVE_JSON_H_

/// Minimal JSON value for the mesa_serve wire protocol (line-delimited
/// JSON objects; see docs/serving.md). Strict parser: the whole input
/// must be one JSON value, depth is capped, duplicate keys keep the last
/// value. Numbers are doubles (the protocol carries no 64-bit ids that
/// would lose precision). Serialization escapes control characters, so a
/// serialized value never contains a raw newline — the property the
/// line-delimited framing depends on.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace mesa {
namespace serve {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject, kRaw };

  JsonValue() : kind_(Kind::kNull) {}

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b) {
    JsonValue v;
    v.kind_ = Kind::kBool;
    v.bool_ = b;
    return v;
  }
  static JsonValue Number(double n) {
    JsonValue v;
    v.kind_ = Kind::kNumber;
    v.number_ = n;
    return v;
  }
  static JsonValue Str(std::string s) {
    JsonValue v;
    v.kind_ = Kind::kString;
    v.string_ = std::move(s);
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }
  /// Pre-serialized JSON spliced verbatim into the output (used to embed
  /// the metrics snapshot, which is already a JSON string, without a
  /// parse/re-serialize round trip). Never produced by Parse.
  static JsonValue Raw(std::string json) {
    JsonValue v;
    v.kind_ = Kind::kRaw;
    v.string_ = std::move(json);
    return v;
  }

  /// Parses exactly one JSON value spanning the whole input (surrounding
  /// whitespace allowed). Nesting depth is capped at 64.
  static Result<JsonValue> Parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }

  /// Object field by key, or nullptr (also for non-objects).
  const JsonValue* Find(const std::string& key) const;
  /// Typed object accessors with defaults (missing key or wrong type
  /// returns the default).
  std::string GetString(const std::string& key,
                        const std::string& dflt = "") const;
  double GetNumber(const std::string& key, double dflt = 0.0) const;
  bool GetBool(const std::string& key, bool dflt = false) const;

  /// Object mutation: sets `key` (appends; last Set wins on serialize
  /// conflicts — callers don't set duplicates).
  JsonValue& Set(const std::string& key, JsonValue value);
  /// Array mutation.
  JsonValue& Append(JsonValue value);

  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  const std::vector<JsonValue>& elements() const { return elements_; }

  /// Compact single-line rendering (no spaces, escapes < 0x20).
  std::string Serialize() const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;                                       // kString/kRaw
  std::vector<JsonValue> elements_;                          // kArray
  std::vector<std::pair<std::string, JsonValue>> members_;   // kObject
};

/// Escapes and quotes `s` as a JSON string literal.
std::string JsonQuote(std::string_view s);

}  // namespace serve
}  // namespace mesa

#endif  // MESA_SERVE_JSON_H_
