#ifndef MESA_SERVE_SERVER_H_
#define MESA_SERVE_SERVER_H_

/// TCP listener + per-connection handler contexts for the explain daemon.
/// Localhost only, line-delimited JSON (docs/serving.md): each connection
/// gets a dedicated handler thread that reads request lines, hands them
/// to the shared Router, and writes one reply line per request. The heavy
/// lifting inside a request (candidate scoring, permutation tests) fans
/// out over the process-wide thread pool from the handler thread, so the
/// number of connections bounds protocol concurrency while
/// MESA_NUM_THREADS bounds compute concurrency, and the admission
/// controller bounds how many explains are in flight at once.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "serve/router.h"

namespace mesa {
namespace serve {

struct ServerOptions {
  /// Bind address. The daemon is an analyst-local sidecar, not an
  /// internet service; it refuses to bind non-loopback addresses.
  std::string host = "127.0.0.1";
  /// 0 = ephemeral (the kernel picks; read it back from port()).
  uint16_t port = 0;
  /// Requests longer than this are answered with an invalid_argument
  /// reply and the rest of the line is discarded; the connection
  /// survives. Bounds per-connection memory.
  size_t max_line_bytes = 1 << 20;
  int listen_backlog = 64;
};

/// The daemon's socket front end. Owns the accept loop and one handler
/// thread per live connection; does not own the Router.
class Server {
 public:
  /// `router` must outlive the server.
  Server(Router* router, ServerOptions options = {});
  ~Server();  ///< calls Shutdown().

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the accept loop. Fails on a non-loopback
  /// host, an occupied port, or any socket error.
  Status Start();

  /// The bound port (after Start; resolves ephemeral binds).
  uint16_t port() const { return port_; }

  /// True between a successful Start and Shutdown.
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Blocks until a client's `shutdown` request (or a Shutdown call from
  /// another thread), then tears down. This is mesa_serve's main loop.
  void Wait();

  /// Stops accepting, unblocks and joins every connection thread, closes
  /// all sockets. Idempotent; safe from any thread except a connection
  /// handler (handlers request shutdown via the protocol instead).
  void Shutdown();

  /// Graceful drain — the SIGTERM/SIGINT path (docs/robustness.md).
  /// Stops accepting new connections, sheds every not-yet-admitted
  /// explain (admission cap 0), tightens every in-flight explain's
  /// cancel token to now + `budget_ms` so each finishes in time (reply
  /// delivered as usual) or unwinds at its next checkpoint, waits a
  /// bounded time for the in-flight registry to empty, then tears down
  /// like Shutdown(). Counters: serve/drain_started, serve/drain_clean /
  /// serve/drain_timeout, serve/drain_ns (and serve/drain_cancelled via
  /// the router). Safe from any thread except a connection handler.
  void Drain(uint64_t budget_ms);

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
    /// True while the handler is between taking a request line and
    /// finishing the reply write. Drain waits for this as well as the
    /// router's in-flight registry: a request leaves the registry before
    /// its reply hits the socket, and tearing the socket down in that
    /// window would drop a reply the drain contract promises to deliver.
    std::atomic<bool> busy{false};
  };

  void AcceptLoop();
  void HandleConnection(Connection* connection);
  /// Moves finished connections out of connections_ (requires mu_). The
  /// accept loop calls this opportunistically and joins the returned
  /// threads after releasing mu_, so a long-lived daemon does not
  /// accumulate dead threads and a handler blocked on mu_ can never
  /// deadlock against its joiner.
  std::vector<std::unique_ptr<Connection>> ExtractFinished();
  /// True if any live connection is mid-request (busy flag set).
  bool AnyConnectionBusy();
  void RequestShutdown();

  Router* router_;
  ServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};

  std::mutex mu_;  ///< guards connections_ and shutdown_requested_.
  std::vector<std::unique_ptr<Connection>> connections_;
  bool shutdown_requested_ = false;
  std::condition_variable shutdown_cv_;
};

}  // namespace serve
}  // namespace mesa

#endif  // MESA_SERVE_SERVER_H_
