#ifndef MESA_SERVE_ADMISSION_H_
#define MESA_SERVE_ADMISSION_H_

/// Admission control for the explain daemon: a fixed cap on in-flight
/// explain requests. An explain is the expensive verb — it fans out over
/// the shared thread pool — so queuing excess requests behind it would
/// just grow an unbounded backlog of doomed work. Instead TryAcquire is
/// non-blocking: a request over the cap is shed immediately with
/// kResourceExhausted and the client decides whether to retry (fail fast,
/// never hang — see docs/serving.md).

#include <atomic>
#include <cstddef>

namespace mesa {
namespace serve {

class AdmissionController {
 public:
  /// `max_inflight` concurrent permits. 0 is a valid (if drastic) cap:
  /// every explain is shed — useful for drain mode and for pinning the
  /// shed path in tests.
  explicit AdmissionController(size_t max_inflight)
      : max_inflight_(max_inflight) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// RAII permit. ok() == false means the request was shed; destruction
  /// releases the slot only if one was acquired.
  class Permit {
   public:
    Permit() = default;
    Permit(Permit&& other) noexcept : controller_(other.controller_) {
      other.controller_ = nullptr;
    }
    Permit& operator=(Permit&& other) noexcept {
      Release();
      controller_ = other.controller_;
      other.controller_ = nullptr;
      return *this;
    }
    ~Permit() { Release(); }

    bool ok() const { return controller_ != nullptr; }
    void Release() {
      if (controller_ != nullptr) {
        controller_->in_flight_.fetch_sub(1, std::memory_order_relaxed);
        controller_ = nullptr;
      }
    }

   private:
    friend class AdmissionController;
    explicit Permit(AdmissionController* controller)
        : controller_(controller) {}
    AdmissionController* controller_ = nullptr;
  };

  /// Non-blocking: a permit when under the cap, a !ok() permit otherwise.
  Permit TryAcquire() {
    const size_t cap = max_inflight_.load(std::memory_order_relaxed);
    size_t observed = in_flight_.load(std::memory_order_relaxed);
    while (observed < cap) {
      if (in_flight_.compare_exchange_weak(observed, observed + 1,
                                           std::memory_order_relaxed)) {
        return Permit(this);
      }
    }
    shed_.fetch_add(1, std::memory_order_relaxed);
    return Permit();
  }

  size_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }
  size_t max_inflight() const {
    return max_inflight_.load(std::memory_order_relaxed);
  }
  /// Runtime cap change. Setting 0 is drain mode: every new explain is
  /// shed while already-admitted requests keep their permits (permits
  /// release against in_flight_, never against the cap).
  void SetMaxInflight(size_t max_inflight) {
    max_inflight_.store(max_inflight, std::memory_order_relaxed);
  }
  /// Requests shed so far (monotonic).
  size_t shed() const { return shed_.load(std::memory_order_relaxed); }

 private:
  std::atomic<size_t> max_inflight_;
  std::atomic<size_t> in_flight_{0};
  std::atomic<size_t> shed_{0};
};

}  // namespace serve
}  // namespace mesa

#endif  // MESA_SERVE_ADMISSION_H_
