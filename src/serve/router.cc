#include "serve/router.h"

#include <chrono>
#include <cstdio>
#include <utility>

#include "common/cancel.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/retry.h"
#include "core/report_format.h"
#include "kg/serialization.h"
#include "query/sql_parser.h"
#include "snapshot/reader.h"
#include "table/csv.h"

namespace mesa {
namespace serve {
namespace {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Wire rendering of a StatusCode ("resource_exhausted", ...).
const char* WireCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kOutOfRange: return "out_of_range";
    case StatusCode::kFailedPrecondition: return "failed_precondition";
    case StatusCode::kAlreadyExists: return "already_exists";
    case StatusCode::kIOError: return "io_error";
    case StatusCode::kNotImplemented: return "not_implemented";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kDeadlineExceeded: return "deadline_exceeded";
    case StatusCode::kResourceExhausted: return "resource_exhausted";
    case StatusCode::kCancelled: return "cancelled";
  }
  return "internal";
}

std::string ErrorLine(const std::string& trace_id, const std::string& verb,
                      const std::string& code, const std::string& message) {
  JsonValue reply = JsonValue::Object();
  reply.Set("ok", JsonValue::Bool(false));
  reply.Set("trace_id", JsonValue::Str(trace_id));
  if (!verb.empty()) reply.Set("verb", JsonValue::Str(verb));
  reply.Set("code", JsonValue::Str(code));
  reply.Set("error", JsonValue::Str(message));
  return reply.Serialize();
}

std::string StatusErrorLine(const std::string& trace_id,
                            const std::string& verb, const Status& status) {
  return ErrorLine(trace_id, verb, WireCode(status.code()), status.message());
}

}  // namespace

/// Per-request scope: installs the trace ID for this thread (pool workers
/// inherit it — see common/parallel.cc), opens the root span, and records
/// a TraceEvent on destruction.
class Router::RequestScope {
 public:
  RequestScope(std::string trace_id, std::string name)
      : trace_id_(std::move(trace_id)),
        name_(std::move(name)),
        id_guard_(trace_id_),
        path_guard_(name_),
        start_ns_(NowNanos()) {}

  ~RequestScope() {
    metrics::TraceEvent event;
    event.id = trace_id_;
    event.name = name_;
    event.ok = ok_;
    event.duration_ns = NowNanos() - start_ns_;
    // End-to-end request latency as the daemon sees it — the load
    // harness (docs/performance.md §7) diffs these against its own
    // client-side percentiles to isolate transport cost.
    MESA_RECORD("serve/request_ns", event.duration_ns);
    if (ok_) MESA_COUNT("serve/replies_ok");
    metrics::RecordTrace(std::move(event));
  }

  void set_ok(bool ok) { ok_ = ok; }

 private:
  std::string trace_id_;
  std::string name_;
  metrics::TraceIdGuard id_guard_;
  /// The request is the trace root: spans opened inside Explain nest as
  /// "serve/explain/explain/...", keeping daemon and one-shot span
  /// hierarchies distinguishable in the snapshot.
  metrics::PathGuard path_guard_;
  uint64_t start_ns_;
  bool ok_ = false;
};

/// RAII entry in the in-flight registry: registers the request's cancel
/// token on admission so a drain (CancelInflight) or the stuck-request
/// watchdog (ScanStuck) can reach requests they did not start, and
/// removes it on any unwind — reply, error, or cancellation alike.
class Router::InflightRegistration {
 public:
  InflightRegistration(Router* router, const std::string& trace_id,
                       std::shared_ptr<CancelToken> token)
      : router_(router) {
    Inflight entry;
    entry.trace_id = trace_id;
    entry.token = std::move(token);
    entry.start_ns = NowNanos();
    std::lock_guard<std::mutex> lock(router_->inflight_mu_);
    id_ = router_->inflight_seq_++;
    router_->inflight_.emplace(id_, std::move(entry));
  }

  ~InflightRegistration() {
    std::lock_guard<std::mutex> lock(router_->inflight_mu_);
    router_->inflight_.erase(id_);
  }

  InflightRegistration(const InflightRegistration&) = delete;
  InflightRegistration& operator=(const InflightRegistration&) = delete;

 private:
  Router* router_;
  uint64_t id_ = 0;
};

Router::Router(RouterOptions options)
    : options_(options), admission_(options.max_inflight) {}

Status Router::AddDataset(const DatasetSpec& spec) {
  if (spec.name.empty()) {
    return Status::InvalidArgument("dataset name must not be empty");
  }
  if (datasets_.count(spec.name) > 0) {
    return Status::AlreadyExists("dataset '" + spec.name +
                                 "' already resident");
  }
  if (spec.csv_path.empty() == spec.snapshot_path.empty()) {
    return Status::InvalidArgument(
        "dataset '" + spec.name +
        "' needs exactly one of csv_path / snapshot_path");
  }

  ResidentDataset dataset;
  dataset.name = spec.name;
  Table table;
  std::vector<std::string> extraction_columns = spec.extraction_columns;
  if (!spec.snapshot_path.empty()) {
    if (!spec.kg_path.empty()) {
      return Status::InvalidArgument(
          "dataset '" + spec.name +
          "' is a snapshot; it carries its own KG (kg_path must be empty)");
    }
    MESA_ASSIGN_OR_RETURN(snapshot::SnapshotReader reader,
                          snapshot::SnapshotReader::Open(spec.snapshot_path));
    MESA_ASSIGN_OR_RETURN(table, reader.ReadTable());
    if (reader.has_kg()) {
      MESA_ASSIGN_OR_RETURN(std::shared_ptr<TripleStore> kg, reader.ReadKg());
      dataset.kg = std::make_unique<TripleStore>(std::move(*kg));
      if (extraction_columns.empty()) {
        extraction_columns = reader.extraction_columns();
      }
      if (extraction_columns.empty()) {
        return Status::InvalidArgument(
            "dataset '" + spec.name +
            "' snapshot has a KG but no extraction columns");
      }
    }
    dataset.source_path = spec.snapshot_path;
  } else {
    MESA_ASSIGN_OR_RETURN(table, ReadCsvFile(spec.csv_path));
    dataset.source_path = spec.csv_path;
    if (!spec.kg_path.empty()) {
      MESA_ASSIGN_OR_RETURN(TripleStore kg, ReadKgFile(spec.kg_path));
      dataset.kg = std::make_unique<TripleStore>(std::move(kg));
      if (extraction_columns.empty()) {
        return Status::InvalidArgument("dataset '" + spec.name +
                                       "' has a KG but no extraction columns");
      }
    }
  }
  dataset.rows = table.num_rows();
  dataset.columns = table.num_columns();
  dataset.mesa = std::make_unique<Mesa>(std::move(table), dataset.kg.get(),
                                        extraction_columns, spec.options);
  names_.push_back(spec.name);
  datasets_.emplace(spec.name, std::move(dataset));
  return Status::OK();
}

Status Router::WarmStart() {
  for (auto& [name, dataset] : datasets_) {
    Status status = dataset.mesa->Preprocess();
    if (!status.ok()) {
      return Status(status.code(),
                    "warm start of '" + name + "': " + status.message());
    }
  }
  return Status::OK();
}

const ResidentDataset* Router::FindDataset(const std::string& name) const {
  auto it = datasets_.find(name);
  return it == datasets_.end() ? nullptr : &it->second;
}

std::string Router::NextTraceId() {
  uint64_t seq = trace_seq_.fetch_add(1, std::memory_order_relaxed);
  // The sequence number alone guarantees uniqueness within the process;
  // the hash suffix distinguishes daemon instances in scraped logs.
  const void* self = this;
  uint64_t h = StableHash64Bytes(&self, sizeof(self)) ^
               (seq * 0x9e3779b97f4a7c15ULL);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "t-%llu-%04llx",
                static_cast<unsigned long long>(seq),
                static_cast<unsigned long long>(h & 0xffff));
  return buf;
}

std::string Router::ErrorReplyLine(const std::string& code,
                                   const std::string& message) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  MESA_COUNT("serve/requests");
  MESA_COUNT("serve/errors");
  return ErrorLine(NextTraceId(), "", code, message);
}

Router::HandleResult Router::Handle(const std::string& request_line) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  MESA_COUNT("serve/requests");
  const std::string trace_id = NextTraceId();

  Result<JsonValue> parsed = JsonValue::Parse(request_line);
  if (!parsed.ok()) {
    MESA_COUNT("serve/errors");
    return {StatusErrorLine(trace_id, "", parsed.status()), false};
  }
  if (!parsed->is_object()) {
    MESA_COUNT("serve/errors");
    return {ErrorLine(trace_id, "", "invalid_argument",
                      "request must be a JSON object"),
            false};
  }
  const std::string verb = parsed->GetString("verb");
  if (verb == "explain") return HandleExplain(*parsed, trace_id);
  if (verb == "status") return HandleStatus(trace_id);
  if (verb == "metrics") return HandleMetrics(trace_id);
  if (verb == "shutdown") {
    RequestScope scope(trace_id, "serve/shutdown");
    scope.set_ok(true);
    JsonValue reply = JsonValue::Object();
    reply.Set("ok", JsonValue::Bool(true));
    reply.Set("trace_id", JsonValue::Str(trace_id));
    reply.Set("verb", JsonValue::Str("shutdown"));
    reply.Set("shutting_down", JsonValue::Bool(true));
    return {reply.Serialize(), true};
  }
  MESA_COUNT("serve/errors");
  return {ErrorLine(trace_id, verb, "invalid_argument",
                    verb.empty() ? "missing verb"
                                 : "unknown verb '" + verb + "'"),
          false};
}

Router::HandleResult Router::HandleExplain(const JsonValue& request,
                                           const std::string& trace_id) {
  const std::string dataset_name = request.GetString("dataset");
  const std::string sql = request.GetString("sql");
  if (dataset_name.empty() || sql.empty()) {
    MESA_COUNT("serve/errors");
    return {ErrorLine(trace_id, "explain", "invalid_argument",
                      "explain needs 'dataset' and 'sql'"),
            false};
  }
  const ResidentDataset* dataset = FindDataset(dataset_name);
  if (dataset == nullptr) {
    MESA_COUNT("serve/errors");
    return {ErrorLine(trace_id, "explain", "not_found",
                      "no resident dataset '" + dataset_name + "'"),
            false};
  }

  // Admission: shed instead of queue. The reply is cheap by design — the
  // permit check happens before any per-request work.
  AdmissionController::Permit permit = admission_.TryAcquire();
  if (!permit.ok()) {
    MESA_COUNT("serve/admission/shed");
    return {ErrorLine(trace_id, "explain", "resource_exhausted",
                      "explain capacity exhausted (" +
                          std::to_string(admission_.max_inflight()) +
                          " in flight); retry later"),
            false};
  }
  MESA_COUNT("serve/admission/accepted");

  // Deadline: the request's own `deadline_ms` wins over the daemon
  // default. The token is charged from this point, so time spent inside
  // the daemon (parse, analysis, execution) all counts against the
  // budget; pipeline checkpoints (common/cancel.h) do the enforcement.
  // A request with no deadline still gets a token — a drain cancels it
  // through the in-flight registry.
  uint64_t deadline_ms =
      static_cast<uint64_t>(request.GetNumber("deadline_ms", 0.0));
  if (deadline_ms == 0) deadline_ms = options_.default_deadline_ms;
  std::shared_ptr<CancelToken> token = CancelToken::WithTimeoutMs(deadline_ms);

  RequestScope scope(trace_id, "serve/explain");
  CancelScope cancel_scope(token);
  InflightRegistration registration(this, trace_id, token);
  if (explain_hook_) explain_hook_();

  // Every failure unwinds through here. Cancellation outcomes get their
  // own counters; the deadline bucket is gated on the *token* having
  // expired so a KG retry-budget DeadlineExceeded (docs/robustness.md)
  // is not mistaken for a request deadline.
  auto fail = [&](const Status& status) -> HandleResult {
    const uint64_t token_deadline = token->deadline_ns();
    if (status.code() == StatusCode::kCancelled) {
      MESA_COUNT("serve/cancelled");
    } else if (status.code() == StatusCode::kDeadlineExceeded &&
               token_deadline != 0 && !token->Check().ok()) {
      MESA_COUNT("serve/deadline_exceeded");
      const uint64_t now = CancelClockNowNs();
      if (now > token_deadline) {
        // Unwind latency: deadline firing -> error reply ready. The
        // bound the checkpoints buy (docs/robustness.md).
        MESA_RECORD("serve/unwind_ns", now - token_deadline);
      }
    } else {
      MESA_COUNT("serve/errors");
    }
    return {StatusErrorLine(trace_id, "explain", status), false};
  };

  // Fast unwind for requests that arrived already expired (or were
  // cancelled by a drain while the hook held them).
  Status early = token->Check();
  if (!early.ok()) return fail(early);

  Result<QuerySpec> query = ParseQuery(sql);
  if (!query.ok()) return fail(query.status());
  Result<MesaReport> report = dataset->mesa->Explain(*query);
  if (!report.ok()) return fail(report.status());

  // Render exactly what `mesa_cli explain [--subgroups ...]` prints, so
  // daemon replies stay byte-comparable to one-shot goldens.
  std::string text = FormatReport(*report);
  const JsonValue* subgroups = request.Find("subgroups");
  if (subgroups != nullptr && subgroups->is_array() &&
      !subgroups->elements().empty()) {
    SubgroupOptions sg;
    sg.threshold = 0.05 * report->base_cmi;
    for (const JsonValue& col : subgroups->elements()) {
      if (col.is_string() && !col.as_string().empty()) {
        sg.refinement_attributes.push_back(col.as_string());
      }
    }
    Result<std::vector<UnexplainedSubgroup>> groups =
        dataset->mesa->FindSubgroups(*query,
                                     report->explanation.attribute_names, sg);
    if (!groups.ok()) return fail(groups.status());
    text += FormatSubgroups(*groups);
  }

  scope.set_ok(true);
  JsonValue reply = JsonValue::Object();
  reply.Set("ok", JsonValue::Bool(true));
  reply.Set("trace_id", JsonValue::Str(trace_id));
  reply.Set("verb", JsonValue::Str("explain"));
  reply.Set("dataset", JsonValue::Str(dataset_name));
  reply.Set("report", JsonValue::Str(text));
  reply.Set("base_cmi", JsonValue::Number(report->base_cmi));
  reply.Set("final_cmi", JsonValue::Number(report->final_cmi));
  JsonValue explanation = JsonValue::Array();
  for (const std::string& name : report->explanation.attribute_names) {
    explanation.Append(JsonValue::Str(name));
  }
  reply.Set("explanation", std::move(explanation));
  // Degraded-coverage visibility (docs/robustness.md): a daemon whose KG
  // had permanent faults serves partial extractions; every reply says so.
  reply.Set("coverage", JsonValue::Number(report->extraction.Coverage()));
  reply.Set("values_failed",
            JsonValue::Number(
                static_cast<double>(report->extraction.values_failed)));
  return {reply.Serialize(), false};
}

size_t Router::inflight_requests() const {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  return inflight_.size();
}

size_t Router::CancelInflight(uint64_t deadline_ns) {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  for (auto& [id, entry] : inflight_) {
    (void)id;
    entry.token->TightenDeadlineNs(deadline_ns);
  }
  MESA_COUNT_N("serve/drain_cancelled", inflight_.size());
  return inflight_.size();
}

size_t Router::ScanStuck(uint64_t now_ns, double multiplier) {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  size_t flagged = 0;
  for (auto& [id, entry] : inflight_) {
    (void)id;
    if (entry.stuck_logged) continue;
    const uint64_t deadline = entry.token->deadline_ns();
    // No deadline means no budget to exceed; a deadline at/before the
    // start is a drain artifact, not a budget.
    if (deadline == 0 || deadline <= entry.start_ns) continue;
    if (now_ns <= entry.start_ns) continue;
    const uint64_t budget_ns = deadline - entry.start_ns;
    const uint64_t elapsed_ns = now_ns - entry.start_ns;
    if (static_cast<double>(elapsed_ns) >
        multiplier * static_cast<double>(budget_ns)) {
      entry.stuck_logged = true;
      ++flagged;
      MESA_COUNT("serve/stuck_requests");
      MESA_LOG(Warning) << "stuck request " << entry.trace_id << ": "
                        << elapsed_ns / 1000000 << " ms elapsed against a "
                        << budget_ns / 1000000
                        << " ms deadline budget and still not unwinding";
    }
  }
  return flagged;
}

Router::HandleResult Router::HandleStatus(const std::string& trace_id) {
  RequestScope scope(trace_id, "serve/status");
  scope.set_ok(true);
  JsonValue reply = JsonValue::Object();
  reply.Set("ok", JsonValue::Bool(true));
  reply.Set("trace_id", JsonValue::Str(trace_id));
  reply.Set("verb", JsonValue::Str("status"));
  JsonValue datasets = JsonValue::Array();
  for (const std::string& name : names_) {
    const ResidentDataset& dataset = datasets_.at(name);
    JsonValue entry = JsonValue::Object();
    entry.Set("name", JsonValue::Str(name));
    entry.Set("rows",
              JsonValue::Number(static_cast<double>(dataset.rows)));
    entry.Set("columns",
              JsonValue::Number(static_cast<double>(dataset.columns)));
    entry.Set("kg_columns",
              JsonValue::Number(
                  static_cast<double>(dataset.mesa->kg_columns().size())));
    entry.Set("coverage",
              JsonValue::Number(dataset.mesa->extraction_stats().Coverage()));
    datasets.Append(std::move(entry));
  }
  reply.Set("datasets", std::move(datasets));
  reply.Set("in_flight",
            JsonValue::Number(static_cast<double>(admission_.in_flight())));
  reply.Set("max_inflight", JsonValue::Number(static_cast<double>(
                                admission_.max_inflight())));
  reply.Set("shed",
            JsonValue::Number(static_cast<double>(admission_.shed())));
  reply.Set("requests", JsonValue::Number(static_cast<double>(
                            requests_.load(std::memory_order_relaxed))));
  return {reply.Serialize(), false};
}

Router::HandleResult Router::HandleMetrics(const std::string& trace_id) {
  RequestScope scope(trace_id, "serve/metrics");
  scope.set_ok(true);
  JsonValue reply = JsonValue::Object();
  reply.Set("ok", JsonValue::Bool(true));
  reply.Set("trace_id", JsonValue::Str(trace_id));
  reply.Set("verb", JsonValue::Str("metrics"));
  // The snapshot is already JSON; splice it in verbatim.
  reply.Set("metrics", JsonValue::Raw(metrics::SnapshotJson()));
  return {reply.Serialize(), false};
}

}  // namespace serve
}  // namespace mesa
