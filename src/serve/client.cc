#include "serve/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace mesa {
namespace serve {
namespace {

/// Waits for `events` on `fd`. timeout_ms 0 = no timeout (returns OK
/// immediately; the caller's blocking syscall provides the waiting).
/// A timeout surfaces as kDeadlineExceeded — a daemon that stopped
/// replying must not hang the client forever (docs/robustness.md).
Status WaitFd(int fd, short events, uint64_t timeout_ms, const char* what) {
  if (timeout_ms == 0) return Status::OK();
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = events;
  for (;;) {
    int r = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (r < 0) {
      if (errno == EINTR) continue;  // restart with the full window
      return Status::IOError(std::string("poll: ") + std::strerror(errno));
    }
    if (r == 0) {
      return Status::DeadlineExceeded(std::string(what) + " timed out after " +
                                      std::to_string(timeout_ms) + " ms");
    }
    return Status::OK();
  }
}

}  // namespace

Result<std::unique_ptr<Client>> Client::Connect(uint16_t port,
                                                const std::string& host,
                                                ClientOptions options) {
  in_addr addr{};
  if (::inet_pton(AF_INET, host.c_str(), &addr) != 1) {
    return Status::InvalidArgument("bad address '" + host + "'");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in server{};
  server.sin_family = AF_INET;
  server.sin_addr = addr;
  server.sin_port = htons(port);

  if (options.connect_timeout_ms > 0) {
    // Bounded connect: non-blocking connect, poll for writability, read
    // the outcome from SO_ERROR, then return the socket to blocking mode
    // (reads/writes get their own poll-based bounds).
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&server),
                       sizeof(server));
    if (rc != 0 && errno != EINPROGRESS) {
      Status status = Status::Unavailable("connect " + host + ":" +
                                          std::to_string(port) + ": " +
                                          std::strerror(errno));
      ::close(fd);
      return status;
    }
    if (rc != 0) {
      Status wait =
          WaitFd(fd, POLLOUT, options.connect_timeout_ms, "connect");
      if (!wait.ok()) {
        ::close(fd);
        return wait;
      }
      int err = 0;
      socklen_t err_len = sizeof(err);
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len);
      if (err != 0) {
        Status status = Status::Unavailable("connect " + host + ":" +
                                            std::to_string(port) + ": " +
                                            std::strerror(err));
        ::close(fd);
        return status;
      }
    }
    ::fcntl(fd, F_SETFL, flags);
  } else if (::connect(fd, reinterpret_cast<sockaddr*>(&server),
                       sizeof(server)) != 0) {
    Status status = Status::Unavailable("connect " + host + ":" +
                                        std::to_string(port) + ": " +
                                        std::strerror(errno));
    ::close(fd);
    return status;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<Client>(new Client(fd, options));
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::string> Client::CallRaw(const std::string& request_line) {
  std::string framed = request_line;
  framed += '\n';
  const char* data = framed.data();
  size_t size = framed.size();
  while (size > 0) {
    MESA_RETURN_IF_ERROR(
        WaitFd(fd_, POLLOUT, options_.write_timeout_ms, "send"));
    ssize_t n = ::send(fd_, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("send: ") + std::strerror(errno));
    }
    data += static_cast<size_t>(n);
    size -= static_cast<size_t>(n);
  }

  for (;;) {
    size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return line;
    }
    MESA_RETURN_IF_ERROR(
        WaitFd(fd_, POLLIN, options_.read_timeout_ms, "read reply"));
    char chunk[4096];
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      return Status::Unavailable("connection closed before reply");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

Result<JsonValue> Client::Call(const JsonValue& request) {
  MESA_ASSIGN_OR_RETURN(std::string line, CallRaw(request.Serialize()));
  Result<JsonValue> reply = JsonValue::Parse(line);
  if (!reply.ok()) {
    return Status::Internal("unparseable reply: " + reply.status().message());
  }
  if (!reply->is_object()) {
    return Status::Internal("reply is not a JSON object");
  }
  return reply;
}

Result<Client::ExplainReply> Client::Explain(
    const std::string& dataset, const std::string& sql,
    const std::vector<std::string>& subgroups, uint64_t deadline_ms) {
  JsonValue request = JsonValue::Object();
  request.Set("verb", JsonValue::Str("explain"));
  request.Set("dataset", JsonValue::Str(dataset));
  request.Set("sql", JsonValue::Str(sql));
  // Field position matches loadgen::WorkloadQuery::RequestLine so both
  // senders emit byte-identical request lines for the same query.
  if (deadline_ms > 0) {
    request.Set("deadline_ms",
                JsonValue::Number(static_cast<double>(deadline_ms)));
  }
  if (!subgroups.empty()) {
    JsonValue cols = JsonValue::Array();
    for (const std::string& col : subgroups) {
      cols.Append(JsonValue::Str(col));
    }
    request.Set("subgroups", std::move(cols));
  }
  MESA_ASSIGN_OR_RETURN(JsonValue reply, Call(request));

  ExplainReply out;
  out.ok = reply.GetBool("ok");
  out.trace_id = reply.GetString("trace_id");
  out.code = reply.GetString("code");
  out.error = reply.GetString("error");
  out.report = reply.GetString("report");
  out.base_cmi = reply.GetNumber("base_cmi");
  out.final_cmi = reply.GetNumber("final_cmi");
  out.coverage = reply.GetNumber("coverage", 1.0);
  out.values_failed =
      static_cast<uint64_t>(reply.GetNumber("values_failed", 0.0));
  const JsonValue* explanation = reply.Find("explanation");
  if (explanation != nullptr && explanation->is_array()) {
    for (const JsonValue& name : explanation->elements()) {
      if (name.is_string()) out.explanation.push_back(name.as_string());
    }
  }
  return out;
}

Result<JsonValue> Client::GetStatus() {
  JsonValue request = JsonValue::Object();
  request.Set("verb", JsonValue::Str("status"));
  return Call(request);
}

Result<std::string> Client::MetricsJson() {
  JsonValue request = JsonValue::Object();
  request.Set("verb", JsonValue::Str("metrics"));
  MESA_ASSIGN_OR_RETURN(JsonValue reply, Call(request));
  if (!reply.GetBool("ok")) {
    return Status::Internal("metrics failed: " + reply.GetString("error"));
  }
  const JsonValue* metrics = reply.Find("metrics");
  if (metrics == nullptr) return Status::Internal("reply lacks 'metrics'");
  return metrics->Serialize();
}

Status Client::Shutdown() {
  JsonValue request = JsonValue::Object();
  request.Set("verb", JsonValue::Str("shutdown"));
  Result<JsonValue> reply = Call(request);
  MESA_RETURN_IF_ERROR(reply.status());
  if (!reply->GetBool("ok")) {
    return Status::Internal("shutdown refused: " + reply->GetString("error"));
  }
  return Status::OK();
}

}  // namespace serve
}  // namespace mesa
