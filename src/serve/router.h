#ifndef MESA_SERVE_ROUTER_H_
#define MESA_SERVE_ROUTER_H_

/// Request router for the explain daemon: owns the resident datasets
/// (CSV loaded, KG joined, pruning done, caches warm), dispatches the
/// wire verbs (explain / status / metrics / shutdown), stamps every
/// request with a unique trace ID, and runs explains through the
/// admission controller. Protocol reference: docs/serving.md.
///
/// Thread-safety: AddDataset / WarmStart are setup-time (single thread,
/// before serving). Handle may then be called from any number of
/// connection threads concurrently — resident state is immutable during
/// serving and Mesa::Explain is safe under concurrent callers (see
/// core/mesa.h).

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "core/mesa.h"
#include "kg/triple_store.h"
#include "serve/admission.h"
#include "serve/json.h"

namespace mesa {
namespace serve {

struct RouterOptions {
  /// Cap on concurrently executing explain requests; excess requests are
  /// shed with a fast resource_exhausted reply (never queued).
  size_t max_inflight = 4;
  /// Deadline charged to explain requests that carry no `deadline_ms`
  /// field of their own; 0 = no default deadline. The deadline covers
  /// everything from request receipt to reply (admission + parse +
  /// execution), enforced through common/cancel.h checkpoints.
  uint64_t default_deadline_ms = 0;
};

/// One resident dataset: the owned knowledge graph (if any) and the Mesa
/// instance answering queries over it.
struct ResidentDataset {
  std::string name;
  std::string source_path;          ///< the CSV or .msnap it was loaded from.
  std::unique_ptr<TripleStore> kg;  ///< owned; Mesa holds a raw pointer.
  std::unique_ptr<Mesa> mesa;
  size_t rows = 0;
  size_t columns = 0;
};

class Router {
 public:
  explicit Router(RouterOptions options = {});

  struct DatasetSpec {
    std::string name;
    /// Either a CSV (+ optional kg_path) or a binary snapshot — exactly
    /// one of csv_path / snapshot_path must be set. A snapshot carries
    /// its own KG and extraction column list (src/snapshot/reader.h).
    std::string csv_path;
    std::string snapshot_path;
    std::string kg_path;  ///< empty = no knowledge graph (HypDB regime).
    std::vector<std::string> extraction_columns;
    MesaOptions options;
  };

  /// Loads the CSV (+ KG) or snapshot from disk and builds the resident
  /// Mesa — exactly the load paths `mesa_cli explain` takes, so daemon
  /// replies are byte-identical to one-shot runs over the same files.
  Status AddDataset(const DatasetSpec& spec);

  /// Preprocesses every resident dataset now (extraction, offline
  /// pruning, cache fill) so the first explain request pays nothing.
  Status WarmStart();

  struct HandleResult {
    std::string reply_line;  ///< serialized JSON reply, no newline.
    bool shutdown = false;   ///< a shutdown request was accepted.
  };

  /// Parses and executes one request line. Never throws and never
  /// returns a non-protocol error: malformed input becomes an ok=false
  /// reply, so the connection always has a line to send back.
  HandleResult Handle(const std::string& request_line);

  /// Protocol-shaped error reply for transport-level failures the
  /// connection detects itself (oversized line). Stamped with a fresh
  /// trace ID like any other reply.
  std::string ErrorReplyLine(const std::string& code,
                             const std::string& message);

  AdmissionController& admission() { return admission_; }
  const std::vector<std::string>& dataset_names() const { return names_; }
  uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Number of admitted explain requests currently executing (the
  /// in-flight registry's size; a superset check of admission permits —
  /// every registered request holds one).
  size_t inflight_requests() const;

  /// Drain support: tightens every in-flight request's cancel token to
  /// `deadline_ns` (absolute steady-clock ns; see common/cancel.h), so
  /// each unwinds at its next checkpoint and replies cancelled /
  /// deadline_exceeded. Returns how many requests were told to stop
  /// (counted in `serve/drain_cancelled`).
  size_t CancelInflight(uint64_t deadline_ns);

  /// Stuck-request watchdog scan: a request whose elapsed time exceeds
  /// `multiplier` times its deadline budget without unwinding is logged
  /// and counted (`serve/stuck_requests`), once per request. `now_ns` is
  /// explicit so tests can drive the scan deterministically. Requests
  /// with no deadline are never stuck. Returns newly-flagged requests.
  size_t ScanStuck(uint64_t now_ns, double multiplier);

  /// Test-only: invoked inside every admitted explain request — permit
  /// held, in-flight registry entry live, CancelScope installed — so
  /// tests can hold requests in flight and observe drain / watchdog
  /// behaviour deterministically.
  void set_explain_hook(std::function<void()> hook) {
    explain_hook_ = std::move(hook);
  }

 private:
  class RequestScope;
  class InflightRegistration;

  /// One admitted explain currently executing.
  struct Inflight {
    std::string trace_id;
    std::shared_ptr<CancelToken> token;
    uint64_t start_ns = 0;
    bool stuck_logged = false;  ///< watchdog flagged it already.
  };

  const ResidentDataset* FindDataset(const std::string& name) const;
  std::string NextTraceId();

  HandleResult HandleExplain(const JsonValue& request,
                             const std::string& trace_id);
  HandleResult HandleStatus(const std::string& trace_id);
  HandleResult HandleMetrics(const std::string& trace_id);

  RouterOptions options_;
  AdmissionController admission_;
  std::map<std::string, ResidentDataset> datasets_;
  std::vector<std::string> names_;  ///< insertion order, for status.
  std::atomic<uint64_t> trace_seq_{0};
  std::atomic<uint64_t> requests_{0};
  std::function<void()> explain_hook_;  ///< test-only, set before serving.

  mutable std::mutex inflight_mu_;
  uint64_t inflight_seq_ = 0;               ///< guarded by inflight_mu_.
  std::map<uint64_t, Inflight> inflight_;   ///< guarded by inflight_mu_.
};

}  // namespace serve
}  // namespace mesa

#endif  // MESA_SERVE_ROUTER_H_
