#ifndef MESA_SERVE_ROUTER_H_
#define MESA_SERVE_ROUTER_H_

/// Request router for the explain daemon: owns the resident datasets
/// (CSV loaded, KG joined, pruning done, caches warm), dispatches the
/// wire verbs (explain / status / metrics / shutdown), stamps every
/// request with a unique trace ID, and runs explains through the
/// admission controller. Protocol reference: docs/serving.md.
///
/// Thread-safety: AddDataset / WarmStart are setup-time (single thread,
/// before serving). Handle may then be called from any number of
/// connection threads concurrently — resident state is immutable during
/// serving and Mesa::Explain is safe under concurrent callers (see
/// core/mesa.h).

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/mesa.h"
#include "kg/triple_store.h"
#include "serve/admission.h"
#include "serve/json.h"

namespace mesa {
namespace serve {

struct RouterOptions {
  /// Cap on concurrently executing explain requests; excess requests are
  /// shed with a fast resource_exhausted reply (never queued).
  size_t max_inflight = 4;
};

/// One resident dataset: the owned knowledge graph (if any) and the Mesa
/// instance answering queries over it.
struct ResidentDataset {
  std::string name;
  std::string csv_path;
  std::unique_ptr<TripleStore> kg;  ///< owned; Mesa holds a raw pointer.
  std::unique_ptr<Mesa> mesa;
  size_t rows = 0;
  size_t columns = 0;
};

class Router {
 public:
  explicit Router(RouterOptions options = {});

  struct DatasetSpec {
    std::string name;
    std::string csv_path;
    std::string kg_path;  ///< empty = no knowledge graph (HypDB regime).
    std::vector<std::string> extraction_columns;
    MesaOptions options;
  };

  /// Loads the CSV (+ KG) from disk and builds the resident Mesa —
  /// exactly the load path `mesa_cli explain` takes, so daemon replies
  /// are byte-identical to one-shot runs over the same files.
  Status AddDataset(const DatasetSpec& spec);

  /// Preprocesses every resident dataset now (extraction, offline
  /// pruning, cache fill) so the first explain request pays nothing.
  Status WarmStart();

  struct HandleResult {
    std::string reply_line;  ///< serialized JSON reply, no newline.
    bool shutdown = false;   ///< a shutdown request was accepted.
  };

  /// Parses and executes one request line. Never throws and never
  /// returns a non-protocol error: malformed input becomes an ok=false
  /// reply, so the connection always has a line to send back.
  HandleResult Handle(const std::string& request_line);

  /// Protocol-shaped error reply for transport-level failures the
  /// connection detects itself (oversized line). Stamped with a fresh
  /// trace ID like any other reply.
  std::string ErrorReplyLine(const std::string& code,
                             const std::string& message);

  AdmissionController& admission() { return admission_; }
  const std::vector<std::string>& dataset_names() const { return names_; }
  uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  class RequestScope;

  const ResidentDataset* FindDataset(const std::string& name) const;
  std::string NextTraceId();

  HandleResult HandleExplain(const JsonValue& request,
                             const std::string& trace_id);
  HandleResult HandleStatus(const std::string& trace_id);
  HandleResult HandleMetrics(const std::string& trace_id);

  RouterOptions options_;
  AdmissionController admission_;
  std::map<std::string, ResidentDataset> datasets_;
  std::vector<std::string> names_;  ///< insertion order, for status.
  std::atomic<uint64_t> trace_seq_{0};
  std::atomic<uint64_t> requests_{0};
};

}  // namespace serve
}  // namespace mesa

#endif  // MESA_SERVE_ROUTER_H_
