#include "serve/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace mesa {
namespace serve {
namespace {

constexpr size_t kMaxDepth = 64;

/// Recursive-descent parser over a string_view with a cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> ParseAll() {
    MESA_ASSIGN_OR_RETURN(JsonValue v, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return v;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Result<JsonValue> ParseValue(size_t depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        MESA_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue::Str(std::move(s));
      }
      case 't':
        if (ConsumeLiteral("true")) return JsonValue::Bool(true);
        return Error("bad literal");
      case 'f':
        if (ConsumeLiteral("false")) return JsonValue::Bool(false);
        return Error("bad literal");
      case 'n':
        if (ConsumeLiteral("null")) return JsonValue::Null();
        return Error("bad literal");
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject(size_t depth) {
    ++pos_;  // '{'
    JsonValue out = JsonValue::Object();
    SkipWhitespace();
    if (Consume('}')) return out;
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      MESA_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      MESA_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      out.Set(key, std::move(value));
      SkipWhitespace();
      if (Consume('}')) return out;
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  Result<JsonValue> ParseArray(size_t depth) {
    ++pos_;  // '['
    JsonValue out = JsonValue::Array();
    SkipWhitespace();
    if (Consume(']')) return out;
    for (;;) {
      MESA_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      out.Append(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return out;
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // opening '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          MESA_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
          // Surrogate pair: combine; lone surrogates are an error.
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (!ConsumeLiteral("\\u")) return Error("lone high surrogate");
            MESA_ASSIGN_OR_RETURN(uint32_t lo, ParseHex4());
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return Error("bad low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("lone low surrogate");
          }
          AppendUtf8(cp, &out);
          break;
        }
        default:
          return Error("bad escape");
      }
    }
    return Error("unterminated string");
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v += static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v += static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v += static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("bad hex digit in \\u escape");
      }
    }
    return v;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      *out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      *out += static_cast<char>(0xC0 | (cp >> 6));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      *out += static_cast<char>(0xE0 | (cp >> 12));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (cp >> 18));
      *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  /// JSON number grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
  /// — stricter than strtod, which also takes "01", ".5", "0x1", "inf".
  static bool IsJsonNumber(std::string_view t) {
    size_t i = 0;
    auto digit = [&](size_t j) {
      return j < t.size() && t[j] >= '0' && t[j] <= '9';
    };
    if (i < t.size() && t[i] == '-') ++i;
    if (!digit(i)) return false;
    if (t[i] == '0') {
      ++i;
    } else {
      while (digit(i)) ++i;
    }
    if (i < t.size() && t[i] == '.') {
      ++i;
      if (!digit(i)) return false;
      while (digit(i)) ++i;
    }
    if (i < t.size() && (t[i] == 'e' || t[i] == 'E')) {
      ++i;
      if (i < t.size() && (t[i] == '+' || t[i] == '-')) ++i;
      if (!digit(i)) return false;
      while (digit(i)) ++i;
    }
    return i == t.size();
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double v = std::strtod(token.c_str(), &end);
    if (!IsJsonNumber(token) || end == nullptr || *end != '\0' ||
        !std::isfinite(v)) {
      pos_ = start;
      return Error("bad number");
    }
    return JsonValue::Number(v);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

void AppendNumber(double v, std::string* out) {
  // Integers (the common protocol case: counts, ports) render without an
  // exponent or trailing zeros; everything else uses shortest-ish %.17g.
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    *out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", std::isfinite(v) ? v : 0.0);
  *out += buf;
}

void SerializeTo(const JsonValue& v, std::string* out) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      *out += "null";
      break;
    case JsonValue::Kind::kBool:
      *out += v.as_bool() ? "true" : "false";
      break;
    case JsonValue::Kind::kNumber:
      AppendNumber(v.as_number(), out);
      break;
    case JsonValue::Kind::kString:
      *out += JsonQuote(v.as_string());
      break;
    case JsonValue::Kind::kRaw:
      *out += v.as_string();
      break;
    case JsonValue::Kind::kArray: {
      *out += '[';
      bool first = true;
      for (const JsonValue& e : v.elements()) {
        if (!first) *out += ',';
        first = false;
        SerializeTo(e, out);
      }
      *out += ']';
      break;
    }
    case JsonValue::Kind::kObject: {
      *out += '{';
      bool first = true;
      for (const auto& [key, value] : v.members()) {
        if (!first) *out += ',';
        first = false;
        *out += JsonQuote(key);
        *out += ':';
        SerializeTo(value, out);
      }
      *out += '}';
      break;
    }
  }
}

}  // namespace

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return Parser(text).ParseAll();
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  // Last value wins, matching the parser's duplicate-key behaviour.
  const JsonValue* found = nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) found = &v;
  }
  return found;
}

std::string JsonValue::GetString(const std::string& key,
                                 const std::string& dflt) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : dflt;
}

double JsonValue::GetNumber(const std::string& key, double dflt) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : dflt;
}

bool JsonValue::GetBool(const std::string& key, bool dflt) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_bool()) ? v->as_bool() : dflt;
}

JsonValue& JsonValue::Set(const std::string& key, JsonValue value) {
  kind_ = Kind::kObject;
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  members_.emplace_back(key, std::move(value));
  return *this;
}

JsonValue& JsonValue::Append(JsonValue value) {
  kind_ = Kind::kArray;
  elements_.push_back(std::move(value));
  return *this;
}

std::string JsonValue::Serialize() const {
  std::string out;
  SerializeTo(*this, &out);
  return out;
}

std::string JsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace serve
}  // namespace mesa
