// mesa_serve — resident explain daemon for the MESA library.
//
// Loads one or more datasets at startup (CSV + optional KG), preprocesses
// them (extraction, offline pruning, warm caches), then serves explain
// requests over a localhost TCP socket speaking line-delimited JSON
// (protocol: docs/serving.md). One mesa_cli process pays the full load +
// extraction + pruning cost per query; the daemon pays it once.
//
// Examples:
//   mesa_serve --data "covid=/tmp/covid.csv:/tmp/covid.kg:Country+Continent"
//   mesa_serve --data "covid=/tmp/c.csv:/tmp/c.kg:Country;flights=/tmp/f.csv"
//       --port 7411 --max-inflight 8
//
// On success prints exactly one line to stdout before serving:
//   listening on 127.0.0.1:PORT
// (also written to --port-file FILE as the bare port number, for harnesses
// that cannot scrape stdout).
//
// SIGTERM / SIGINT trigger a graceful drain (docs/robustness.md): stop
// accepting, shed new explains, give in-flight explains --drain-budget-ms
// to finish or unwind at a cancellation checkpoint, then exit 0.
//
// Exit codes: 0 clean shutdown (including drain), 1 usage error,
// 2 startup error.

#include <pthread.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/parallel.h"
#include "common/string_util.h"
#include "core/mesa.h"
#include "serve/router.h"
#include "serve/server.h"

namespace mesa {
namespace {

int Usage() {
  std::fprintf(stderr, R"(usage:
  mesa_serve --data SPEC[;SPEC...]
      SPEC is NAME=FILE.csv[:FILE.kg:Col1+Col2+...]
           or NAME=FILE.msnap (a binary snapshot, which carries its own
           KG and extraction columns; see docs/snapshot_format.md)
      Each SPEC becomes one resident dataset addressable by NAME in
      explain requests; the KG columns name the extraction attributes.

      [--port N]            listen port (default 0 = kernel-assigned)
      [--port-file FILE]    also write the bound port number to FILE
      [--max-inflight N]    explain admission cap; excess requests get a
                            fast resource_exhausted reply (default 4)
      [--threads N]         thread pool size (default $MESA_NUM_THREADS)
      [--k N]               max explanation size (default 5)
      [--hops N]            KG extraction depth (default 1)
      [--no-prune]          disable offline+online pruning
      [--no-warm]           skip startup preprocessing (first request
                            per dataset pays it instead)
      [--fault-plan PLAN]   inject KG endpoint faults, e.g.
                            "seed=7;fail_keys=0.5" (see docs/robustness.md)
      [--min-coverage F]    fail explains whose KG extraction coverage
                            falls below this fraction (default 0)
      [--default-deadline-ms N]
                            deadline charged to explain requests that
                            carry no deadline_ms field (default 0 = none)
      [--drain-budget-ms N] how long a SIGTERM/SIGINT drain lets
                            in-flight explains finish before forcing
                            them to unwind (default 2000)
      [--watchdog-interval-ms N]
                            stuck-request scan period (default 1000;
                            0 disables the watchdog)
      [--watchdog-multiplier F]
                            log + count a request as stuck once its
                            elapsed time exceeds F x its deadline
                            budget (default 3.0)
)");
  return 1;
}

// Same minimal --flag parser as mesa_cli.
class Flags {
 public:
  Flags(int argc, char** argv, int start) {
    for (int i = start; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        error_ = "unexpected argument: " + arg;
        return;
      }
      std::string name = arg.substr(2);
      size_t eq = name.find('=');
      if (eq != std::string::npos) {
        values_[name.substr(0, eq)] = name.substr(eq + 1);
        continue;
      }
      if (name == "no-prune" || name == "no-warm") {
        values_[name] = "true";
        continue;
      }
      if (i + 1 >= argc) {
        error_ = "flag --" + name + " needs a value";
        return;
      }
      values_[name] = argv[++i];
    }
  }

  const std::string& error() const { return error_; }
  bool Has(const std::string& name) const { return values_.count(name) > 0; }
  std::string Get(const std::string& name, const std::string& dflt = "") const {
    auto it = values_.find(name);
    return it == values_.end() ? dflt : it->second;
  }
  int64_t GetInt(const std::string& name, int64_t dflt) const {
    auto it = values_.find(name);
    if (it == values_.end()) return dflt;
    int64_t v = dflt;
    ParseInt64(it->second, &v);
    return v;
  }

 private:
  std::map<std::string, std::string> values_;
  std::string error_;
};

// Parses one NAME=FILE.csv[:FILE.kg:Col1+Col2] or NAME=FILE.msnap spec
// into a DatasetSpec (options filled in by the caller). Returns false
// with *error set on a malformed spec.
bool ParseDataSpec(const std::string& spec, serve::Router::DatasetSpec* out,
                   std::string* error) {
  size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0) {
    *error = "data spec needs NAME=FILE.csv or NAME=FILE.msnap: '" + spec +
             "'";
    return false;
  }
  out->name = spec.substr(0, eq);
  std::vector<std::string> parts = Split(spec.substr(eq + 1), ':');
  if (parts.empty() || parts[0].empty()) {
    *error = "data spec '" + out->name + "' has no data path";
    return false;
  }
  const std::string kSnapshotSuffix = ".msnap";
  if (parts[0].size() > kSnapshotSuffix.size() &&
      parts[0].compare(parts[0].size() - kSnapshotSuffix.size(),
                       kSnapshotSuffix.size(), kSnapshotSuffix) == 0) {
    if (parts.size() != 1) {
      *error = "data spec '" + out->name +
               "' is a snapshot; it carries its own KG, drop the " +
               "':FILE.kg:Col1+Col2' suffix";
      return false;
    }
    out->snapshot_path = parts[0];
    return true;
  }
  out->csv_path = parts[0];
  if (parts.size() == 1) return true;  // no KG.
  if (parts.size() != 3) {
    *error = "data spec '" + out->name +
             "' with a KG needs FILE.kg:Col1+Col2 after the CSV";
    return false;
  }
  out->kg_path = parts[1];
  for (auto& col : Split(parts[2], '+')) {
    if (!col.empty()) out->extraction_columns.push_back(col);
  }
  if (out->extraction_columns.empty()) {
    *error = "data spec '" + out->name + "' names a KG but no columns";
    return false;
  }
  return true;
}

int Main(int argc, char** argv) {
  // Block SIGTERM/SIGINT before any thread exists: every thread inherits
  // the mask, so the signals only ever land in the dedicated sigwait
  // thread below, which runs the graceful drain. Installing an async
  // handler instead would restrict the drain to async-signal-safe calls.
  sigset_t drain_signals;
  sigemptyset(&drain_signals);
  sigaddset(&drain_signals, SIGTERM);
  sigaddset(&drain_signals, SIGINT);
  pthread_sigmask(SIG_BLOCK, &drain_signals, nullptr);

  Flags flags(argc, argv, 1);
  if (!flags.error().empty()) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return Usage();
  }
  std::string data = flags.Get("data");
  if (data.empty()) return Usage();

  if (flags.Has("threads")) {
    SetNumThreads(static_cast<size_t>(flags.GetInt("threads", 0)));
  }

  MesaOptions options;
  options.extraction.hops = static_cast<size_t>(flags.GetInt("hops", 1));
  options.mcimr.max_size = static_cast<size_t>(flags.GetInt("k", 5));
  if (flags.Has("no-prune")) {
    options.enable_offline_pruning = false;
    options.enable_online_pruning = false;
  }
  options.fault_plan = flags.Get("fault-plan");
  if (flags.Has("min-coverage")) {
    double floor = 0.0;
    if (!ParseDouble(flags.Get("min-coverage"), &floor) || floor < 0.0 ||
        floor > 1.0) {
      std::fprintf(stderr, "--min-coverage must be a fraction in [0,1]\n");
      return 1;
    }
    options.extraction.min_coverage = floor;
  }

  serve::RouterOptions router_options;
  router_options.max_inflight =
      static_cast<size_t>(flags.GetInt("max-inflight", 4));
  router_options.default_deadline_ms =
      static_cast<uint64_t>(flags.GetInt("default-deadline-ms", 0));
  serve::Router router(router_options);

  for (const std::string& spec_text : Split(data, ';')) {
    if (spec_text.empty()) continue;
    serve::Router::DatasetSpec spec;
    spec.options = options;
    std::string error;
    if (!ParseDataSpec(spec_text, &spec, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    Status added = router.AddDataset(spec);
    if (!added.ok()) {
      std::fprintf(stderr, "cannot load dataset '%s': %s\n",
                   spec.name.c_str(), added.ToString().c_str());
      return 2;
    }
  }
  if (router.dataset_names().empty()) {
    std::fprintf(stderr, "--data yielded no datasets\n");
    return 1;
  }

  if (!flags.Has("no-warm")) {
    Status warmed = router.WarmStart();
    if (!warmed.ok()) {
      std::fprintf(stderr, "warm start failed: %s\n",
                   warmed.ToString().c_str());
      return 2;
    }
  }

  serve::ServerOptions server_options;
  server_options.port = static_cast<uint16_t>(flags.GetInt("port", 0));
  serve::Server server(&router, server_options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 started.ToString().c_str());
    return 2;
  }

  if (flags.Has("port-file")) {
    // Write-then-rename: a harness polling for the file either sees
    // nothing or a complete port number, never a partial write.
    const std::string path = flags.Get("port-file");
    const std::string tmp_path = path + ".tmp";
    std::FILE* f = std::fopen(tmp_path.c_str(), "w");
    bool written =
        f != nullptr &&
        std::fprintf(f, "%u\n", static_cast<unsigned>(server.port())) > 0;
    if (f != nullptr) written = std::fclose(f) == 0 && written;
    if (!written || std::rename(tmp_path.c_str(), path.c_str()) != 0) {
      std::fprintf(stderr, "cannot write port file %s\n", path.c_str());
      server.Shutdown();
      return 2;
    }
  }

  // Harnesses scrape this exact line; flush so a pipe sees it now.
  std::printf("listening on 127.0.0.1:%u\n",
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  // Signal thread: consumes the first SIGTERM/SIGINT and drains. The
  // signals are process-blocked, so sigwait is the only consumer.
  const uint64_t drain_budget_ms =
      static_cast<uint64_t>(flags.GetInt("drain-budget-ms", 2000));
  std::atomic<bool> exiting{false};
  std::thread signal_thread([&] {
    int sig = 0;
    if (sigwait(&drain_signals, &sig) != 0) return;
    if (exiting.load(std::memory_order_acquire)) return;
    std::fprintf(stderr,
                 "mesa_serve: %s received, draining (budget %llu ms)\n",
                 sig == SIGINT ? "SIGINT" : "SIGTERM",
                 static_cast<unsigned long long>(drain_budget_ms));
    server.Drain(drain_budget_ms);
  });

  // Stuck-request watchdog: periodically flags in-flight explains that
  // blew far past their deadline without unwinding (a checkpoint gap or
  // a wedged dependency — see docs/robustness.md).
  const uint64_t watchdog_interval_ms =
      static_cast<uint64_t>(flags.GetInt("watchdog-interval-ms", 1000));
  double watchdog_multiplier = 3.0;
  if (flags.Has("watchdog-multiplier") &&
      (!ParseDouble(flags.Get("watchdog-multiplier"), &watchdog_multiplier) ||
       watchdog_multiplier <= 0.0)) {
    std::fprintf(stderr, "--watchdog-multiplier must be a positive number\n");
    server.Shutdown();
    exiting.store(true, std::memory_order_release);
    ::kill(::getpid(), SIGTERM);
    signal_thread.join();
    return 1;
  }
  std::atomic<bool> stop_watchdog{false};
  std::thread watchdog_thread;
  if (watchdog_interval_ms > 0) {
    watchdog_thread = std::thread([&] {
      uint64_t slept_ms = 0;
      while (!stop_watchdog.load(std::memory_order_acquire)) {
        // Sleep in small slices so shutdown never waits a full interval.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        slept_ms += 20;
        if (slept_ms < watchdog_interval_ms) continue;
        slept_ms = 0;
        router.ScanStuck(CancelClockNowNs(), watchdog_multiplier);
      }
    });
  }

  server.Wait();  // returns after a shutdown request or a drain.

  // Unblock the signal thread if no signal ever arrived (client-driven
  // shutdown): mark the exit first, then post a process-directed SIGTERM
  // for sigwait to consume. If the drain already consumed a real signal,
  // the extra one stays blocked-pending and dies with the process.
  exiting.store(true, std::memory_order_release);
  ::kill(::getpid(), SIGTERM);
  signal_thread.join();
  stop_watchdog.store(true, std::memory_order_release);
  if (watchdog_thread.joinable()) watchdog_thread.join();
  return 0;
}

}  // namespace
}  // namespace mesa

int main(int argc, char** argv) { return mesa::Main(argc, argv); }
