// mesa_cli — command-line front end for the MESA library.
//
// Subcommands:
//   gen      generate one of the four evaluation worlds to CSV + KG files
//   explain  explain an aggregate SQL query over a CSV (+ optional KG)
//
// Examples:
//   mesa_cli gen --dataset so --rows 20000 --out /tmp/so
//   mesa_cli explain --data /tmp/so.csv --kg /tmp/so.kg \
//       --extract Country,Continent \
//       --query "SELECT Country, avg(Salary) FROM so GROUP BY Country" \
//       --subgroups Continent,Gender
//
// Exit codes: 0 success, 1 usage error, 2 runtime error.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/string_util.h"
#include "core/baselines/top_k.h"
#include "core/mesa.h"
#include "core/report_format.h"
#include "datagen/registry.h"
#include "info/cmi_kernel.h"
#include "info/info_cache.h"
#include "kg/serialization.h"
#include "snapshot/reader.h"
#include "snapshot/writer.h"
#include "table/csv.h"

namespace mesa {
namespace {

int Usage() {
  std::fprintf(stderr, R"(usage:
  mesa_cli gen --dataset so|covid|flights|forbes [--rows N] [--seed S] --out PREFIX
      Writes PREFIX.csv (the dataset) and PREFIX.kg (the knowledge graph).

  mesa_cli explain (--data FILE.csv | --snapshot FILE.msnap) --query SQL
      [--kg FILE.kg --extract Col1,Col2]   mine confounders from this KG
                                           (--data form only; a snapshot
                                           already carries its KG)
      [--save-snapshot FILE.msnap]         write the loaded dataset bundle
                                           as a binary snapshot; with no
                                           --query, convert and exit
      [--k N]                              max explanation size (default 5)
      [--hops N]                           KG extraction depth (default 1)
      [--no-prune]                         disable offline+online pruning
      [--subgroups Col1,Col2]              also search unexplained subgroups
      [--baseline topk]                    also print the Top-K baseline
      [--trace]                            show MCIMR's selection steps
      [--metrics[=FILE]]                   dump the metrics/tracing JSON
                                           snapshot (stdout, or to FILE);
                                           includes the info_cache/* hit
                                           and miss counters
      [--info-cache on|off]                sufficient-statistics cache for
                                           the entropy/MI/CMI kernels
                                           (default: $MESA_INFO_CACHE, or
                                           on; see docs/performance.md)
      [--cmi-kernel auto|dense|packed|hash] force the MI/CMI kernel
                                           (default: $MESA_CMI_KERNEL, or
                                           auto = pick by key width; see
                                           docs/architecture.md)
      [--fault-plan PLAN]                  inject KG endpoint faults, e.g.
                                           "seed=7;timeout=0.2;latency=1:5"
                                           (default: $MESA_FAULT_PLAN;
                                           see docs/robustness.md)
      [--min-coverage F]                   fail if fewer than this fraction
                                           of KG key values survive lookup
                                           failures (default 0 = never)
)");
  return 1;
}

// Minimal --flag value parser; flags may appear once. Values attach
// either as the next argument (`--k 5`) or inline (`--k=5`); flags that
// are valid without a value (`--metrics`) default to "true".
class Flags {
 public:
  Flags(int argc, char** argv, int start) {
    for (int i = start; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        error_ = "unexpected argument: " + arg;
        return;
      }
      std::string name = arg.substr(2);
      size_t eq = name.find('=');
      if (eq != std::string::npos) {
        values_[name.substr(0, eq)] = name.substr(eq + 1);
        continue;
      }
      if (name == "no-prune" || name == "trace" || name == "metrics") {
        values_[name] = "true";
        continue;
      }
      if (i + 1 >= argc) {
        error_ = "flag --" + name + " needs a value";
        return;
      }
      values_[name] = argv[++i];
    }
  }

  const std::string& error() const { return error_; }
  bool Has(const std::string& name) const { return values_.count(name) > 0; }
  std::string Get(const std::string& name, const std::string& dflt = "") const {
    auto it = values_.find(name);
    return it == values_.end() ? dflt : it->second;
  }
  int64_t GetInt(const std::string& name, int64_t dflt) const {
    auto it = values_.find(name);
    if (it == values_.end()) return dflt;
    int64_t v = dflt;
    ParseInt64(it->second, &v);
    return v;
  }

 private:
  std::map<std::string, std::string> values_;
  std::string error_;
};

int RunGen(const Flags& flags) {
  std::string name = ToLower(flags.Get("dataset"));
  DatasetKind kind;
  if (name == "so") {
    kind = DatasetKind::kStackOverflow;
  } else if (name == "covid") {
    kind = DatasetKind::kCovid;
  } else if (name == "flights") {
    kind = DatasetKind::kFlights;
  } else if (name == "forbes") {
    kind = DatasetKind::kForbes;
  } else {
    std::fprintf(stderr, "unknown --dataset '%s'\n", name.c_str());
    return 1;
  }
  std::string out = flags.Get("out");
  if (out.empty()) {
    std::fprintf(stderr, "--out PREFIX is required\n");
    return 1;
  }
  GenOptions gen;
  gen.rows = static_cast<size_t>(flags.GetInt("rows", 0));
  gen.seed = static_cast<uint64_t>(flags.GetInt("seed", 43));
  auto ds = MakeDataset(kind, gen);
  if (!ds.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 ds.status().ToString().c_str());
    return 2;
  }
  Status csv = WriteCsvFile(ds->table, out + ".csv");
  Status kg = WriteKgFile(*ds->kg, out + ".kg");
  if (!csv.ok() || !kg.ok()) {
    std::fprintf(stderr, "write failed: %s %s\n", csv.ToString().c_str(),
                 kg.ToString().c_str());
    return 2;
  }
  std::printf("wrote %s.csv (%zu rows) and %s.kg (%zu entities, %zu triples)\n",
              out.c_str(), ds->table.num_rows(), out.c_str(),
              ds->kg->num_entities(), ds->kg->num_triples());
  std::printf("extraction columns: ");
  for (size_t i = 0; i < ds->extraction_columns.size(); ++i) {
    std::printf("%s%s", i ? "," : "", ds->extraction_columns[i].c_str());
  }
  std::printf("\n");
  return 0;
}

int RunExplain(const Flags& flags) {
  std::string data = flags.Get("data");
  std::string snapshot_path = flags.Get("snapshot");
  std::string save_snapshot = flags.Get("save-snapshot");
  std::string sql = flags.Get("query");
  if (data.empty() == snapshot_path.empty()) {
    std::fprintf(stderr, "exactly one of --data / --snapshot is required\n");
    return 1;
  }
  if (sql.empty() && save_snapshot.empty()) {
    std::fprintf(stderr,
                 "--query is required (omit it only with --save-snapshot "
                 "to just convert)\n");
    return 1;
  }

  Table table;
  TripleStore kg;
  std::shared_ptr<TripleStore> kg_from_snapshot;
  const TripleStore* kg_ptr = nullptr;
  std::vector<std::string> extract;

  if (!snapshot_path.empty()) {
    if (flags.Has("kg") || flags.Has("extract")) {
      std::fprintf(stderr,
                   "--kg/--extract conflict with --snapshot: a snapshot "
                   "already carries its KG and extraction columns\n");
      return 1;
    }
    auto reader = snapshot::SnapshotReader::Open(snapshot_path);
    if (!reader.ok()) {
      std::fprintf(stderr, "cannot read %s: %s\n", snapshot_path.c_str(),
                   reader.status().ToString().c_str());
      return 2;
    }
    auto loaded_table = reader->ReadTable();
    if (!loaded_table.ok()) {
      std::fprintf(stderr, "cannot read %s: %s\n", snapshot_path.c_str(),
                   loaded_table.status().ToString().c_str());
      return 2;
    }
    table = std::move(*loaded_table);
    if (reader->has_kg()) {
      auto loaded_kg = reader->ReadKg();
      if (!loaded_kg.ok()) {
        std::fprintf(stderr, "cannot read %s: %s\n", snapshot_path.c_str(),
                     loaded_kg.status().ToString().c_str());
        return 2;
      }
      kg_from_snapshot = std::move(*loaded_kg);
      kg_ptr = kg_from_snapshot.get();
      extract = reader->extraction_columns();
    }
  } else {
    auto loaded_table = ReadCsvFile(data);
    if (!loaded_table.ok()) {
      std::fprintf(stderr, "cannot read %s: %s\n", data.c_str(),
                   loaded_table.status().ToString().c_str());
      return 2;
    }
    table = std::move(*loaded_table);
    if (flags.Has("kg")) {
      auto loaded = ReadKgFile(flags.Get("kg"));
      if (!loaded.ok()) {
        std::fprintf(stderr, "cannot read KG: %s\n",
                     loaded.status().ToString().c_str());
        return 2;
      }
      kg = std::move(*loaded);
      kg_ptr = &kg;
      for (auto& col : Split(flags.Get("extract"), ',')) {
        if (!col.empty()) extract.push_back(col);
      }
      if (extract.empty()) {
        std::fprintf(stderr, "--kg needs --extract Col1,Col2\n");
        return 1;
      }
    }
  }

  if (!save_snapshot.empty()) {
    snapshot::SnapshotWriter writer;
    writer.SetTable(&table);
    if (kg_ptr != nullptr) writer.SetKg(kg_ptr);
    writer.SetExtractionColumns(extract);
    Status written = writer.WriteFile(save_snapshot);
    if (!written.ok()) {
      std::fprintf(stderr, "cannot write snapshot: %s\n",
                   written.ToString().c_str());
      return 2;
    }
    std::printf("wrote %s (%zu rows, %zu columns%s)\n", save_snapshot.c_str(),
                table.num_rows(), table.num_columns(),
                kg_ptr != nullptr ? ", with KG" : "");
    if (sql.empty()) return 0;
  }

  if (flags.Has("info-cache")) {
    std::string v = flags.Get("info-cache");
    if (v == "on" || v == "off") {
      info_cache::SetEnabled(v == "on");
    } else {
      std::fprintf(stderr, "--info-cache must be 'on' or 'off'\n");
      return 1;
    }
  }

  if (flags.Has("cmi-kernel")) {
    CmiKernel kernel = CmiKernel::kAuto;
    if (!ParseCmiKernel(flags.Get("cmi-kernel"), &kernel)) {
      std::fprintf(stderr,
                   "--cmi-kernel must be auto, dense, packed, or hash\n");
      return 1;
    }
    SetCmiKernelMode(kernel);
  }

  MesaOptions options;
  options.extraction.hops = static_cast<size_t>(flags.GetInt("hops", 1));
  options.mcimr.max_size = static_cast<size_t>(flags.GetInt("k", 5));
  if (flags.Has("no-prune")) {
    options.enable_offline_pruning = false;
    options.enable_online_pruning = false;
  }
  options.fault_plan = flags.Get("fault-plan");
  if (flags.Has("min-coverage")) {
    double floor = 0.0;
    if (!ParseDouble(flags.Get("min-coverage"), &floor) || floor < 0.0 ||
        floor > 1.0) {
      std::fprintf(stderr, "--min-coverage must be a fraction in [0,1]\n");
      return 1;
    }
    options.extraction.min_coverage = floor;
  }

  Mesa mesa(std::move(table), kg_ptr, extract, options);
  auto query = ParseQuery(sql);
  if (!query.ok()) {
    std::fprintf(stderr, "bad query: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }
  auto report = mesa.Explain(*query);
  if (!report.ok()) {
    std::fprintf(stderr, "explain failed: %s\n",
                 report.status().ToString().c_str());
    return 2;
  }

  ReportFormatOptions fmt;
  fmt.show_trace = flags.Has("trace");
  std::fputs(FormatReport(*report, fmt).c_str(), stdout);

  if (flags.Get("baseline") == "topk") {
    auto pq = mesa.PrepareQuery(*query);
    if (pq.ok()) {
      Explanation topk = RunTopK(*pq->analysis, pq->candidate_indices,
                                 options.mcimr.max_size);
      std::printf("top-k baseline: %s (I=%.4f)\n", topk.ToString().c_str(),
                  topk.final_cmi);
    }
  }

  if (flags.Has("subgroups")) {
    SubgroupOptions sg;
    sg.threshold = 0.05 * report->base_cmi;
    for (auto& col : Split(flags.Get("subgroups"), ',')) {
      if (!col.empty()) sg.refinement_attributes.push_back(col);
    }
    auto groups = mesa.FindSubgroups(*query,
                                     report->explanation.attribute_names, sg);
    if (groups.ok()) std::fputs(FormatSubgroups(*groups).c_str(), stdout);
  }

  // --metrics / --metrics=FILE: one JSON object with every counter and
  // span distribution recorded during this run (empty when the build has
  // MESA_METRICS=OFF; see docs/observability.md for the schema).
  if (flags.Has("metrics")) {
    std::string json = metrics::SnapshotJson();
    std::string path = flags.Get("metrics");
    if (path.empty() || path == "true") {
      std::printf("%s\n", json.c_str());
    } else {
      std::FILE* f = std::fopen(path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot write metrics to %s\n", path.c_str());
        return 2;
      }
      std::fprintf(f, "%s\n", json.c_str());
      std::fclose(f);
    }
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];
  Flags flags(argc, argv, 2);
  if (!flags.error().empty()) {
    std::fprintf(stderr, "%s\n", flags.error().c_str());
    return Usage();
  }
  if (command == "gen") return RunGen(flags);
  if (command == "explain") return RunExplain(flags);
  return Usage();
}

}  // namespace
}  // namespace mesa

int main(int argc, char** argv) { return mesa::Main(argc, argv); }
