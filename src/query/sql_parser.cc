#include "query/sql_parser.h"

#include <cctype>

#include "common/string_util.h"

namespace mesa {

namespace {

enum class TokenKind {
  kIdent,
  kString,
  kNumber,
  kSymbol,  // punctuation / operators
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // identifier / literal payload / symbol
  size_t pos = 0;     // byte offset for error messages
};

class Lexer {
 public:
  explicit Lexer(const std::string& sql) : sql_(sql) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    size_t i = 0;
    const size_t n = sql_.size();
    while (i < n) {
      char c = sql_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      size_t start = i;
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        while (i < n && (std::isalnum(static_cast<unsigned char>(sql_[i])) ||
                         sql_[i] == '_')) {
          ++i;
        }
        out.push_back({TokenKind::kIdent, sql_.substr(start, i - start), start});
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '-' && i + 1 < n &&
                  std::isdigit(static_cast<unsigned char>(sql_[i + 1])))) {
        ++i;
        while (i < n && (std::isdigit(static_cast<unsigned char>(sql_[i])) ||
                         sql_[i] == '.' || sql_[i] == 'e' || sql_[i] == 'E' ||
                         ((sql_[i] == '+' || sql_[i] == '-') &&
                          (sql_[i - 1] == 'e' || sql_[i - 1] == 'E')))) {
          ++i;
        }
        out.push_back({TokenKind::kNumber, sql_.substr(start, i - start), start});
      } else if (c == '\'') {
        std::string text;
        ++i;
        bool closed = false;
        while (i < n) {
          if (sql_[i] == '\'') {
            if (i + 1 < n && sql_[i + 1] == '\'') {  // escaped quote
              text += '\'';
              i += 2;
            } else {
              ++i;
              closed = true;
              break;
            }
          } else {
            text += sql_[i++];
          }
        }
        if (!closed) {
          return Status::InvalidArgument("unterminated string literal at byte " +
                                         std::to_string(start));
        }
        out.push_back({TokenKind::kString, std::move(text), start});
      } else if (c == '"') {
        std::string text;
        ++i;
        bool closed = false;
        while (i < n) {
          if (sql_[i] == '"') {
            ++i;
            closed = true;
            break;
          }
          text += sql_[i++];
        }
        if (!closed) {
          return Status::InvalidArgument(
              "unterminated quoted identifier at byte " +
              std::to_string(start));
        }
        out.push_back({TokenKind::kIdent, std::move(text), start});
      } else if (c == '<' || c == '>' || c == '!' || c == '=') {
        std::string sym(1, c);
        ++i;
        if (i < n && (sql_[i] == '=' || (c == '<' && sql_[i] == '>'))) {
          sym += sql_[i++];
        }
        out.push_back({TokenKind::kSymbol, std::move(sym), start});
      } else if (c == '(' || c == ')' || c == ',' || c == '*' || c == ';') {
        out.push_back({TokenKind::kSymbol, std::string(1, c), start});
        ++i;
      } else {
        return Status::InvalidArgument("unexpected character '" +
                                       std::string(1, c) + "' at byte " +
                                       std::to_string(start));
      }
    }
    out.push_back({TokenKind::kEnd, "", n});
    return out;
  }

 private:
  const std::string& sql_;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<QuerySpec> Parse() {
    QuerySpec spec;
    MESA_RETURN_IF_ERROR(ExpectKeyword("SELECT"));

    // Select items: one or more grouping columns plus exactly one
    // aggregate, in any order.
    bool saw_agg = false;
    std::vector<std::string> plain_cols;
    for (;;) {
      MESA_ASSIGN_OR_RETURN(Token ident, ExpectIdent());
      if (PeekSymbol("(")) {
        if (saw_agg) return Error("multiple aggregates in SELECT list");
        MESA_ASSIGN_OR_RETURN(spec.aggregate,
                              ParseAggregateFunction(ident.text));
        MESA_RETURN_IF_ERROR(ExpectSymbol("("));
        MESA_ASSIGN_OR_RETURN(Token col, ExpectIdent());
        spec.outcome = col.text;
        MESA_RETURN_IF_ERROR(ExpectSymbol(")"));
        saw_agg = true;
      } else {
        plain_cols.push_back(ident.text);
      }
      if (PeekSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    if (plain_cols.empty() || !saw_agg) {
      return Error("SELECT list must contain the grouping column(s) and one "
                   "aggregate");
    }

    MESA_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    MESA_ASSIGN_OR_RETURN(Token table, ExpectIdent());
    spec.table_name = table.text;

    if (PeekKeyword("WHERE")) {
      Advance();
      for (;;) {
        MESA_ASSIGN_OR_RETURN(Condition cond, ParseCondition());
        spec.context.Add(std::move(cond));
        if (PeekKeyword("AND")) {
          Advance();
          continue;
        }
        break;
      }
    }

    MESA_RETURN_IF_ERROR(ExpectKeyword("GROUP"));
    MESA_RETURN_IF_ERROR(ExpectKeyword("BY"));
    std::vector<std::string> group_cols;
    for (;;) {
      MESA_ASSIGN_OR_RETURN(Token group_col, ExpectIdent());
      group_cols.push_back(group_col.text);
      if (PeekSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    if (group_cols != plain_cols) {
      return Error("GROUP BY columns must match the SELECT grouping "
                   "columns (same order)");
    }
    spec.exposure = group_cols.front();
    spec.secondary_exposures.assign(group_cols.begin() + 1, group_cols.end());
    if (PeekSymbol(";")) Advance();
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing tokens after GROUP BY");
    }
    return spec;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() { ++pos_; }

  Status Error(const std::string& msg) const {
    return Status::InvalidArgument(msg + " (near byte " +
                                   std::to_string(Peek().pos) + ")");
  }

  bool PeekKeyword(const char* kw) const {
    return Peek().kind == TokenKind::kIdent &&
           EqualsIgnoreCase(Peek().text, kw);
  }

  bool PeekSymbol(const char* sym) const {
    return Peek().kind == TokenKind::kSymbol && Peek().text == sym;
  }

  Status ExpectKeyword(const char* kw) {
    if (!PeekKeyword(kw)) return Error(std::string("expected ") + kw);
    Advance();
    return Status::OK();
  }

  Status ExpectSymbol(const char* sym) {
    if (!PeekSymbol(sym)) return Error(std::string("expected '") + sym + "'");
    Advance();
    return Status::OK();
  }

  Result<Token> ExpectIdent() {
    if (Peek().kind != TokenKind::kIdent) return Error("expected identifier");
    Token t = Peek();
    Advance();
    return t;
  }

  Result<Value> ParseLiteral() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kString: {
        Value v = Value::String(t.text);
        Advance();
        return v;
      }
      case TokenKind::kNumber: {
        int64_t iv;
        if (ParseInt64(t.text, &iv)) {
          Advance();
          return Value::Int(iv);
        }
        double dv;
        if (ParseDouble(t.text, &dv)) {
          Advance();
          return Value::Double(dv);
        }
        return Error("bad numeric literal '" + t.text + "'");
      }
      case TokenKind::kIdent:
        if (EqualsIgnoreCase(t.text, "true")) {
          Advance();
          return Value::Bool(true);
        }
        if (EqualsIgnoreCase(t.text, "false")) {
          Advance();
          return Value::Bool(false);
        }
        // Bare identifiers in literal position are treated as strings, so
        // `WHERE Continent = Europe` (as written in the paper) parses.
        {
          Value v = Value::String(t.text);
          Advance();
          return v;
        }
      default:
        return Error("expected literal");
    }
  }

  Result<Condition> ParseCondition() {
    Condition cond;
    MESA_ASSIGN_OR_RETURN(Token col, ExpectIdent());
    cond.column = col.text;
    if (PeekKeyword("IN")) {
      Advance();
      cond.op = CompareOp::kIn;
      MESA_RETURN_IF_ERROR(ExpectSymbol("("));
      for (;;) {
        MESA_ASSIGN_OR_RETURN(Value v, ParseLiteral());
        cond.in_values.push_back(std::move(v));
        if (PeekSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
      MESA_RETURN_IF_ERROR(ExpectSymbol(")"));
      return cond;
    }
    if (Peek().kind != TokenKind::kSymbol) return Error("expected operator");
    const std::string& sym = Peek().text;
    if (sym == "=") {
      cond.op = CompareOp::kEq;
    } else if (sym == "!=" || sym == "<>") {
      cond.op = CompareOp::kNe;
    } else if (sym == "<") {
      cond.op = CompareOp::kLt;
    } else if (sym == "<=") {
      cond.op = CompareOp::kLe;
    } else if (sym == ">") {
      cond.op = CompareOp::kGt;
    } else if (sym == ">=") {
      cond.op = CompareOp::kGe;
    } else {
      return Error("unknown operator '" + sym + "'");
    }
    Advance();
    MESA_ASSIGN_OR_RETURN(cond.value, ParseLiteral());
    return cond;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<QuerySpec> ParseQuery(const std::string& sql) {
  Lexer lexer(sql);
  MESA_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace mesa
