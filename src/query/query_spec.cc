#include "query/query_spec.h"

#include <algorithm>

namespace mesa {

std::vector<std::string> QuerySpec::AllExposures() const {
  std::vector<std::string> out;
  out.reserve(1 + secondary_exposures.size());
  out.push_back(exposure);
  for (const auto& e : secondary_exposures) out.push_back(e);
  return out;
}

bool QuerySpec::IsExposure(const std::string& name) const {
  if (name == exposure) return true;
  return std::find(secondary_exposures.begin(), secondary_exposures.end(),
                   name) != secondary_exposures.end();
}

std::string QuerySpec::ToSql() const {
  std::string group_list = exposure;
  for (const auto& e : secondary_exposures) group_list += ", " + e;
  std::string sql = "SELECT " + group_list + ", " +
                    AggregateFunctionName(aggregate) + "(" + outcome +
                    ") FROM " + table_name;
  if (!context.empty()) sql += " WHERE " + context.ToString();
  sql += " GROUP BY " + group_list;
  return sql;
}

Status QuerySpec::Validate(const Table& table) const {
  std::vector<std::string> exposures = AllExposures();
  for (size_t i = 0; i < exposures.size(); ++i) {
    if (exposures[i] == outcome) {
      return Status::InvalidArgument("exposure and outcome must differ");
    }
    if (!table.schema().Contains(exposures[i])) {
      return Status::NotFound("exposure column not found: " + exposures[i]);
    }
    for (size_t j = i + 1; j < exposures.size(); ++j) {
      if (exposures[i] == exposures[j]) {
        return Status::InvalidArgument("duplicate grouping attribute: " +
                                       exposures[i]);
      }
    }
  }
  MESA_ASSIGN_OR_RETURN(const Column* ocol, table.ColumnByName(outcome));
  if (ocol->type() == DataType::kString) {
    return Status::InvalidArgument("outcome column must be numeric: " +
                                   outcome);
  }
  for (const auto& cond : context.conditions()) {
    if (!table.schema().Contains(cond.column)) {
      return Status::NotFound("context column not found: " + cond.column);
    }
  }
  return Status::OK();
}

Result<GroupByResult> QuerySpec::Execute(const Table& table) const {
  MESA_RETURN_IF_ERROR(Validate(table));
  return GroupByAggregate(table, AllExposures(), outcome, aggregate, context);
}

}  // namespace mesa
