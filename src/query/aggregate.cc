#include "query/aggregate.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace mesa {

const char* AggregateFunctionName(AggregateFunction f) {
  switch (f) {
    case AggregateFunction::kAvg:
      return "avg";
    case AggregateFunction::kSum:
      return "sum";
    case AggregateFunction::kCount:
      return "count";
    case AggregateFunction::kMin:
      return "min";
    case AggregateFunction::kMax:
      return "max";
    case AggregateFunction::kMedian:
      return "median";
    case AggregateFunction::kStdDev:
      return "stddev";
  }
  return "?";
}

Result<AggregateFunction> ParseAggregateFunction(const std::string& name) {
  std::string n = ToLower(StripWhitespace(name).data() == nullptr
                              ? name
                              : std::string(StripWhitespace(name)));
  if (n == "avg" || n == "mean" || n == "average") {
    return AggregateFunction::kAvg;
  }
  if (n == "sum") return AggregateFunction::kSum;
  if (n == "count") return AggregateFunction::kCount;
  if (n == "min") return AggregateFunction::kMin;
  if (n == "max") return AggregateFunction::kMax;
  if (n == "median") return AggregateFunction::kMedian;
  if (n == "stddev" || n == "std" || n == "stdev") {
    return AggregateFunction::kStdDev;
  }
  return Status::InvalidArgument("unknown aggregate function: " + name);
}

Result<double> ComputeAggregate(AggregateFunction f,
                                const std::vector<double>& values) {
  AggregateAccumulator acc(f);
  for (double v : values) acc.Add(v);
  return acc.Finalize();
}

AggregateAccumulator::AggregateAccumulator(AggregateFunction f) : f_(f) {}

void AggregateAccumulator::Add(double v) {
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  sum_ += v;
  sum_sq_ += v * v;
  ++count_;
  if (f_ == AggregateFunction::kMedian) buffer_.push_back(v);
}

Result<double> AggregateAccumulator::Finalize() const {
  if (f_ == AggregateFunction::kCount) return static_cast<double>(count_);
  if (count_ == 0) {
    return Status::InvalidArgument("aggregate over empty group");
  }
  switch (f_) {
    case AggregateFunction::kAvg:
      return sum_ / static_cast<double>(count_);
    case AggregateFunction::kSum:
      return sum_;
    case AggregateFunction::kMin:
      return min_;
    case AggregateFunction::kMax:
      return max_;
    case AggregateFunction::kStdDev: {
      double n = static_cast<double>(count_);
      double var = sum_sq_ / n - (sum_ / n) * (sum_ / n);
      return std::sqrt(std::max(0.0, var));
    }
    case AggregateFunction::kMedian: {
      std::vector<double> v = buffer_;
      std::sort(v.begin(), v.end());
      size_t mid = v.size() / 2;
      if (v.size() % 2 == 1) return v[mid];
      return 0.5 * (v[mid - 1] + v[mid]);
    }
    case AggregateFunction::kCount:
      break;
  }
  return Status::Internal("bad aggregate function");
}

}  // namespace mesa
