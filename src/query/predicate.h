#ifndef MESA_QUERY_PREDICATE_H_
#define MESA_QUERY_PREDICATE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "table/table.h"

namespace mesa {

/// Comparison operators supported in WHERE clauses.
enum class CompareOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kIn,
};

const char* CompareOpName(CompareOp op);

/// A single comparison `column op literal` (or `column IN (v1, v2, ...)`).
/// Null cells never satisfy a condition (SQL three-valued logic collapsed to
/// false, which is what filtering needs).
struct Condition {
  std::string column;
  CompareOp op = CompareOp::kEq;
  Value value;                   // for binary ops
  std::vector<Value> in_values;  // for kIn

  /// "Country = 'Germany'" rendering.
  std::string ToString() const;

  friend bool operator==(const Condition& a, const Condition& b);
};

/// A conjunction of conditions — exactly the context class C from the paper
/// (Section 2.1): the WHERE clause of the supported aggregate queries, and
/// the thing Algorithm 2 refines. An empty conjunction accepts all rows.
class Conjunction {
 public:
  Conjunction() = default;
  explicit Conjunction(std::vector<Condition> conditions)
      : conditions_(std::move(conditions)) {}

  const std::vector<Condition>& conditions() const { return conditions_; }
  bool empty() const { return conditions_.empty(); }
  size_t size() const { return conditions_.size(); }

  void Add(Condition c) { conditions_.push_back(std::move(c)); }

  /// New conjunction = this AND extra.
  Conjunction Refine(Condition extra) const;

  /// True if every condition of `other` appears in this conjunction (i.e.
  /// this is `other` or a refinement of it).
  bool Contains(const Conjunction& other) const;

  /// Evaluates one row.
  Result<bool> Matches(const Table& table, size_t row) const;

  /// Evaluates all rows into a 0/1 mask.
  Result<std::vector<uint8_t>> EvaluateMask(const Table& table) const;

  /// Indices of matching rows.
  Result<std::vector<size_t>> MatchingRows(const Table& table) const;

  /// "Continent = 'Europe' AND Age > 30" rendering ("TRUE" when empty).
  std::string ToString() const;

  friend bool operator==(const Conjunction& a, const Conjunction& b) {
    return a.conditions_ == b.conditions_;
  }

 private:
  std::vector<Condition> conditions_;
};

/// Evaluates one condition against one row (false on null cell). Fails if
/// the column is missing or the comparison is type-incompatible.
Result<bool> EvalCondition(const Condition& cond, const Table& table,
                           size_t row);

}  // namespace mesa

#endif  // MESA_QUERY_PREDICATE_H_
