#include "query/predicate.h"

#include <algorithm>

namespace mesa {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kIn:
      return "IN";
  }
  return "?";
}

namespace {

std::string QuoteLiteral(const Value& v) {
  if (!v.is_string()) return v.ToString();
  // SQL-style escaping: embedded single quotes double up, so the rendered
  // condition re-parses ("O'Neil" -> 'O''Neil').
  std::string out = "'";
  for (char c : v.string_value()) {
    if (c == '\'') out += "''";
    else out += c;
  }
  out += "'";
  return out;
}

// Comparison helper; fails on string-vs-number mismatches so type bugs
// surface instead of silently filtering everything out.
Result<int> CompareValues(const Value& a, const Value& b) {
  if (a.is_numeric() && b.is_numeric()) {
    double x = a.AsDouble(), y = b.AsDouble();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a.is_string() && b.is_string()) {
    int c = a.string_value().compare(b.string_value());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (a.is_bool() && b.is_bool()) {
    int x = a.bool_value() ? 1 : 0, y = b.bool_value() ? 1 : 0;
    return x - y;
  }
  return Status::InvalidArgument("incomparable types: " +
                                 std::string(DataTypeName(a.type())) + " vs " +
                                 DataTypeName(b.type()));
}

}  // namespace

std::string Condition::ToString() const {
  if (op == CompareOp::kIn) {
    std::string out = column + " IN (";
    for (size_t i = 0; i < in_values.size(); ++i) {
      if (i > 0) out += ", ";
      out += QuoteLiteral(in_values[i]);
    }
    out += ")";
    return out;
  }
  return column + " " + CompareOpName(op) + " " + QuoteLiteral(value);
}

bool operator==(const Condition& a, const Condition& b) {
  return a.column == b.column && a.op == b.op && a.value == b.value &&
         a.in_values == b.in_values;
}

Result<bool> EvalCondition(const Condition& cond, const Table& table,
                           size_t row) {
  MESA_ASSIGN_OR_RETURN(const Column* col, table.ColumnByName(cond.column));
  if (row >= col->size()) return Status::OutOfRange("row out of range");
  if (col->IsNull(row)) return false;
  Value cell = col->GetValue(row);
  if (cond.op == CompareOp::kIn) {
    for (const auto& v : cond.in_values) {
      if (cell == v) return true;
    }
    return false;
  }
  MESA_ASSIGN_OR_RETURN(int c, CompareValues(cell, cond.value));
  switch (cond.op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
    case CompareOp::kIn:
      break;
  }
  return Status::Internal("bad op");
}

Conjunction Conjunction::Refine(Condition extra) const {
  Conjunction out = *this;
  out.Add(std::move(extra));
  return out;
}

bool Conjunction::Contains(const Conjunction& other) const {
  for (const auto& c : other.conditions_) {
    if (std::find(conditions_.begin(), conditions_.end(), c) ==
        conditions_.end()) {
      return false;
    }
  }
  return true;
}

Result<bool> Conjunction::Matches(const Table& table, size_t row) const {
  for (const auto& cond : conditions_) {
    MESA_ASSIGN_OR_RETURN(bool ok, EvalCondition(cond, table, row));
    if (!ok) return false;
  }
  return true;
}

Result<std::vector<uint8_t>> Conjunction::EvaluateMask(
    const Table& table) const {
  std::vector<uint8_t> mask(table.num_rows(), 1);
  for (const auto& cond : conditions_) {
    // Validate the column once per condition, then scan.
    MESA_ASSIGN_OR_RETURN(const Column* col, table.ColumnByName(cond.column));
    (void)col;
    for (size_t r = 0; r < table.num_rows(); ++r) {
      if (!mask[r]) continue;
      MESA_ASSIGN_OR_RETURN(bool ok, EvalCondition(cond, table, r));
      if (!ok) mask[r] = 0;
    }
  }
  return mask;
}

Result<std::vector<size_t>> Conjunction::MatchingRows(
    const Table& table) const {
  MESA_ASSIGN_OR_RETURN(std::vector<uint8_t> mask, EvaluateMask(table));
  std::vector<size_t> rows;
  for (size_t r = 0; r < mask.size(); ++r) {
    if (mask[r]) rows.push_back(r);
  }
  return rows;
}

std::string Conjunction::ToString() const {
  if (conditions_.empty()) return "TRUE";
  std::string out;
  for (size_t i = 0; i < conditions_.size(); ++i) {
    if (i > 0) out += " AND ";
    out += conditions_[i].ToString();
  }
  return out;
}

}  // namespace mesa
