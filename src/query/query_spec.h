#ifndef MESA_QUERY_QUERY_SPEC_H_
#define MESA_QUERY_QUERY_SPEC_H_

#include <string>

#include "common/result.h"
#include "query/aggregate.h"
#include "query/group_by.h"
#include "query/predicate.h"
#include "table/table.h"

namespace mesa {

/// The class of queries the paper supports (Section 2.1):
///   SELECT T, agg(O) FROM D WHERE C GROUP BY T
/// T is the exposure (grouping attribute), O the outcome (aggregated
/// attribute), C the context (conjunctive WHERE clause).
struct QuerySpec {
  std::string exposure;  ///< T — grouping attribute.
  /// Additional grouping attributes — the paper's "naturally generalized
  /// for multiple grouping attributes" (e.g. Flights Q4 groups by origin
  /// state AND airline). The effective exposure is the composite of
  /// `exposure` and these.
  std::vector<std::string> secondary_exposures;
  std::string outcome;   ///< O — aggregated attribute (numeric).
  AggregateFunction aggregate = AggregateFunction::kAvg;
  Conjunction context;   ///< C — WHERE clause.
  std::string table_name = "D";  ///< informational only.

  /// All grouping attributes, primary first.
  std::vector<std::string> AllExposures() const;

  /// True if `name` is one of the grouping attributes.
  bool IsExposure(const std::string& name) const;

  /// Renders back to SQL text.
  std::string ToSql() const;

  /// Validates the spec against a table: columns exist, outcome numeric,
  /// exposures != outcome, no duplicate exposure.
  Status Validate(const Table& table) const;

  /// Executes the query.
  Result<GroupByResult> Execute(const Table& table) const;
};

}  // namespace mesa

#endif  // MESA_QUERY_QUERY_SPEC_H_
