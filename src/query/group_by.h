#ifndef MESA_QUERY_GROUP_BY_H_
#define MESA_QUERY_GROUP_BY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "query/aggregate.h"
#include "query/predicate.h"
#include "table/table.h"

namespace mesa {

/// One output row of a grouped aggregate.
struct GroupResult {
  Value group;       ///< The (first) exposure value T = t_i.
  /// All grouping values, in grouping-attribute order (size 1 for the
  /// single-exposure case; group == values[0]).
  std::vector<Value> values;
  double aggregate = 0.0;  ///< agg(O) over the group.
  size_t count = 0;        ///< Group size (rows contributing).
};

/// Result of a grouped aggregate query: one row per group, plus the total
/// number of input rows that passed the WHERE clause.
struct GroupByResult {
  std::vector<GroupResult> groups;
  size_t input_rows = 0;

  /// Converts to a two-column table [group_column, agg_name(outcome)].
  Result<Table> ToTable(const std::string& group_column,
                        const std::string& agg_column) const;
};

/// Executes `SELECT group_col, agg(outcome_col) FROM table WHERE context
/// GROUP BY group_col`. Rows with null group or null outcome are skipped
/// (SQL semantics: aggregates ignore NULL; NULL group keys are dropped here
/// because the explanation problem has no use for them). Groups are returned
/// sorted by group value for determinism.
Result<GroupByResult> GroupByAggregate(const Table& table,
                                       const std::string& group_col,
                                       const std::string& outcome_col,
                                       AggregateFunction agg,
                                       const Conjunction& context = {});

/// Composite-key variant: groups by every column in `group_cols` (the
/// multiple-grouping-attribute generalisation). Rows with a null in any
/// grouping column are dropped.
Result<GroupByResult> GroupByAggregate(const Table& table,
                                       const std::vector<std::string>& group_cols,
                                       const std::string& outcome_col,
                                       AggregateFunction agg,
                                       const Conjunction& context = {});

/// Maps every row of `table` to a dense group id in [0, n_groups) according
/// to the value of `column` (nulls get id -1). Used by the information-
/// theoretic estimators. Group ids are assigned in order of first
/// appearance; `group_values` receives the distinct values.
Result<std::vector<int32_t>> EncodeGroups(const Table& table,
                                          const std::string& column,
                                          std::vector<Value>* group_values);

}  // namespace mesa

#endif  // MESA_QUERY_GROUP_BY_H_
