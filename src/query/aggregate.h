#ifndef MESA_QUERY_AGGREGATE_H_
#define MESA_QUERY_AGGREGATE_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace mesa {

/// Aggregation functions supported by the group-by engine.
enum class AggregateFunction {
  kAvg,
  kSum,
  kCount,
  kMin,
  kMax,
  kMedian,
  kStdDev,
};

/// "avg", "sum", ... lower-case stable name.
const char* AggregateFunctionName(AggregateFunction f);

/// Parses "avg"/"AVG"/"mean" etc. into an AggregateFunction.
Result<AggregateFunction> ParseAggregateFunction(const std::string& name);

/// Computes one aggregate over a set of numeric observations. Empty input
/// yields count 0 for kCount and an error otherwise.
Result<double> ComputeAggregate(AggregateFunction f,
                                const std::vector<double>& values);

/// Streaming accumulator for cheap single-pass aggregates; kMedian buffers.
class AggregateAccumulator {
 public:
  explicit AggregateAccumulator(AggregateFunction f);

  void Add(double v);
  size_t count() const { return count_; }

  /// Final aggregate; error on empty non-count input.
  Result<double> Finalize() const;

 private:
  AggregateFunction f_;
  size_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<double> buffer_;  // only for kMedian
};

}  // namespace mesa

#endif  // MESA_QUERY_AGGREGATE_H_
