#ifndef MESA_QUERY_JOIN_H_
#define MESA_QUERY_JOIN_H_

#include <string>

#include "common/result.h"
#include "table/table.h"

namespace mesa {

/// Join flavours. Left joins keep unmatched left rows with nulls on the
/// right side — exactly what attaching sparse KG attributes to a base table
/// needs.
enum class JoinType { kInner, kLeft };

/// Options for a hash equi-join on a single key per side.
struct JoinOptions {
  JoinType type = JoinType::kLeft;
  /// Prefix applied to right-side column names that collide with left-side
  /// names (the key column of the right side is dropped, never duplicated).
  std::string collision_prefix = "right_";
};

/// Hash equi-join of `left` and `right` on left_key == right_key. Null keys
/// never match. If a right key occurs on multiple rows, the first occurrence
/// wins and a warning is logged (KG extraction produces unique entities per
/// key; duplicates indicate a linking problem, and one-row-per-entity keeps
/// the statistical machinery honest — duplicating base rows would bias every
/// estimator downstream).
Result<Table> HashJoin(const Table& left, const std::string& left_key,
                       const Table& right, const std::string& right_key,
                       const JoinOptions& options = {});

}  // namespace mesa

#endif  // MESA_QUERY_JOIN_H_
