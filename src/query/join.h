#ifndef MESA_QUERY_JOIN_H_
#define MESA_QUERY_JOIN_H_

#include <array>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "table/table.h"

namespace mesa {

/// Join flavours. Left joins keep unmatched left rows with nulls on the
/// right side — exactly what attaching sparse KG attributes to a base table
/// needs.
enum class JoinType { kInner, kLeft };

/// Options for a hash equi-join on a single key per side.
struct JoinOptions {
  JoinType type = JoinType::kLeft;
  /// Prefix applied to right-side column names that collide with left-side
  /// names (the key column of the right side is dropped, never duplicated).
  std::string collision_prefix = "right_";
};

/// The build side of a hash join, reusable across probes: right key ->
/// first row holding it. Extraction joins the same entity table against
/// several probe sides; building once and passing the index by const ref
/// skips the redundant rebuilds. The index is radix-partitioned on the key
/// hash so construction can proceed partition-parallel; the partition of a
/// key is a pure function of its value, so the finished structure — and
/// which duplicate row wins — is identical at any thread count.
class JoinIndex {
 public:
  /// Builds the index over `right[right_key]`. Null keys are skipped. If a
  /// key occurs on multiple rows the first occurrence wins and a warning is
  /// logged (see HashJoin below for why duplicates are collapsed).
  static Result<JoinIndex> Build(const Table& right,
                                 const std::string& right_key);

  /// Row of `right` holding `key`, or -1 if absent. Null never matches.
  int64_t Find(const Value& key) const;

  const Table& right() const { return *right_; }
  const std::string& right_key() const { return right_key_; }
  size_t duplicate_keys() const { return duplicate_keys_; }

 private:
  static constexpr size_t kPartitions = 64;  // power of two

  JoinIndex() = default;

  const Table* right_ = nullptr;  // must outlive the index
  std::string right_key_;
  size_t duplicate_keys_ = 0;
  std::array<std::unordered_map<Value, size_t, ValueHash>, kPartitions> parts_;
};

/// Hash equi-join of `left` and `right` on left_key == right_key. Null keys
/// never match. If a right key occurs on multiple rows, the first occurrence
/// wins and a warning is logged (KG extraction produces unique entities per
/// key; duplicates indicate a linking problem, and one-row-per-entity keeps
/// the statistical machinery honest — duplicating base rows would bias every
/// estimator downstream).
Result<Table> HashJoin(const Table& left, const std::string& left_key,
                       const Table& right, const std::string& right_key,
                       const JoinOptions& options = {});

/// Same join against a prebuilt index (the right side and key live in the
/// index). Row order and every byte of the output match the overload above.
Result<Table> HashJoin(const Table& left, const std::string& left_key,
                       const JoinIndex& index, const JoinOptions& options = {});

}  // namespace mesa

#endif  // MESA_QUERY_JOIN_H_
