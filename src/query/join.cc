#include "query/join.h"

#include <algorithm>
#include <utility>

#include "common/cancel.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/rng.h"

namespace mesa {

namespace {

// Morsel size for the parallel build/probe scans; thread-count independent
// so the decomposition (and with it the output row order) never changes.
constexpr size_t kJoinMorselRows = 2048;
// Below this row count the serial loops win outright.
constexpr size_t kJoinParallelThreshold = 4096;

// Radix partition of a key value. A pure function of the value, so a key
// lands in the same partition no matter which thread hashes it.
size_t KeyPartition(const Value& v) {
  return MixSeed(0x9E3779B97F4A7C15ULL,
                 static_cast<uint64_t>(ValueHash{}(v))) &
         63;  // JoinIndex::kPartitions - 1
}

}  // namespace

Result<JoinIndex> JoinIndex::Build(const Table& right,
                                   const std::string& right_key) {
  static_assert(kPartitions == 64, "KeyPartition masks with 63");
  MESA_ASSIGN_OR_RETURN(const Column* rkey, right.ColumnByName(right_key));

  JoinIndex index;
  index.right_ = &right;
  index.right_key_ = right_key;

  const size_t n = right.num_rows();
  if (n < kJoinParallelThreshold || !DataPlaneParallel()) {
    for (size_t r = 0; r < n; ++r) {
      if (r % kJoinMorselRows == 0) CancelCheckpoint();
      if (rkey->IsNull(r)) continue;
      auto [it, inserted] =
          index.parts_[KeyPartition(rkey->GetValue(r))].emplace(
              rkey->GetValue(r), r);
      (void)it;
      if (!inserted) ++index.duplicate_keys_;
    }
  } else {
    // Phase 1 — morsel scan: bucket each non-null key row by partition,
    // preserving row order within a morsel.
    struct MorselBuckets {
      std::array<std::vector<uint32_t>, kPartitions> rows;
    };
    const size_t num_morsels = (n + kJoinMorselRows - 1) / kJoinMorselRows;
    std::vector<MorselBuckets> morsels(num_morsels);
    ParallelFor(0, num_morsels, [&](size_t m) {
      CancelCheckpoint();
      MorselBuckets& mb = morsels[m];
      const size_t lo = m * kJoinMorselRows;
      const size_t hi = std::min(n, lo + kJoinMorselRows);
      for (size_t r = lo; r < hi; ++r) {
        if (rkey->IsNull(r)) continue;
        mb.rows[KeyPartition(rkey->GetValue(r))].push_back(
            static_cast<uint32_t>(r));
      }
    });

    // Phase 2 — per-partition insert. Walking morsels in order feeds each
    // partition its rows in global row order, so "first occurrence wins"
    // resolves exactly as in the serial loop.
    std::array<size_t, kPartitions> dup_counts{};
    ParallelFor(0, kPartitions, [&](size_t p) {
      CancelCheckpoint();
      auto& part = index.parts_[p];
      for (const MorselBuckets& mb : morsels) {
        for (uint32_t r : mb.rows[p]) {
          auto [it, inserted] = part.emplace(rkey->GetValue(r), r);
          (void)it;
          if (!inserted) ++dup_counts[p];
        }
      }
    });
    for (size_t d : dup_counts) index.duplicate_keys_ += d;
  }

  if (index.duplicate_keys_ > 0) {
    MESA_LOG(Warning) << "HashJoin: " << index.duplicate_keys_
                      << " duplicate right-side keys ignored";
  }
  return index;
}

int64_t JoinIndex::Find(const Value& key) const {
  const auto& part = parts_[KeyPartition(key)];
  auto it = part.find(key);
  return it == part.end() ? -1 : static_cast<int64_t>(it->second);
}

Result<Table> HashJoin(const Table& left, const std::string& left_key,
                       const Table& right, const std::string& right_key,
                       const JoinOptions& options) {
  MESA_ASSIGN_OR_RETURN(JoinIndex index, JoinIndex::Build(right, right_key));
  return HashJoin(left, left_key, index, options);
}

Result<Table> HashJoin(const Table& left, const std::string& left_key,
                       const JoinIndex& index, const JoinOptions& options) {
  MESA_SPAN("query/join");
  MESA_COUNT("query/hash_joins");
  const Table& right = index.right();
  MESA_ASSIGN_OR_RETURN(const Column* lkey, left.ColumnByName(left_key));

  // Probe: per-morsel match buffers, concatenated in morsel index order —
  // byte-for-byte the row order of a serial front-to-back probe.
  std::vector<size_t> left_rows;
  std::vector<int64_t> right_rows;  // -1 = unmatched (left join)
  const size_t n = left.num_rows();
  if (n < kJoinParallelThreshold || !DataPlaneParallel()) {
    left_rows.reserve(n);
    right_rows.reserve(n);
    for (size_t r = 0; r < n; ++r) {
      if (r % kJoinMorselRows == 0) CancelCheckpoint();
      int64_t match = lkey->IsNull(r) ? -1 : index.Find(lkey->GetValue(r));
      if (match < 0 && options.type == JoinType::kInner) continue;
      left_rows.push_back(r);
      right_rows.push_back(match);
    }
  } else {
    struct MorselMatches {
      std::vector<size_t> left_rows;
      std::vector<int64_t> right_rows;
    };
    const size_t num_morsels = (n + kJoinMorselRows - 1) / kJoinMorselRows;
    std::vector<MorselMatches> morsels(num_morsels);
    ParallelFor(0, num_morsels, [&](size_t m) {
      CancelCheckpoint();
      MorselMatches& mm = morsels[m];
      const size_t lo = m * kJoinMorselRows;
      const size_t hi = std::min(n, lo + kJoinMorselRows);
      for (size_t r = lo; r < hi; ++r) {
        int64_t match = lkey->IsNull(r) ? -1 : index.Find(lkey->GetValue(r));
        if (match < 0 && options.type == JoinType::kInner) continue;
        mm.left_rows.push_back(r);
        mm.right_rows.push_back(match);
      }
    });
    // Concatenate the per-morsel buffers in morsel order via prefix
    // offsets: every morsel knows its destination, so the copies run in
    // parallel and the row order is exactly the serial probe's.
    std::vector<size_t> offsets(num_morsels + 1, 0);
    for (size_t m = 0; m < num_morsels; ++m) {
      offsets[m + 1] = offsets[m] + morsels[m].left_rows.size();
    }
    left_rows.resize(offsets.back());
    right_rows.resize(offsets.back());
    ParallelFor(0, num_morsels, [&](size_t m) {
      const MorselMatches& mm = morsels[m];
      std::copy(mm.left_rows.begin(), mm.left_rows.end(),
                left_rows.begin() + offsets[m]);
      std::copy(mm.right_rows.begin(), mm.right_rows.end(),
                right_rows.begin() + offsets[m]);
    });
  }

  // Assemble output: all left columns, then right columns minus its key.
  // Output names (collision handling included) are resolved serially first;
  // the per-column gathers are independent, so they run in parallel.
  Table out = left.TakeRows(left_rows);
  std::vector<std::pair<size_t, std::string>> kept;  // right col idx, name
  for (size_t c = 0; c < right.num_columns(); ++c) {
    const Field& f = right.schema().field(c);
    if (f.name == index.right_key()) continue;
    std::string name = f.name;
    if (out.schema().Contains(name)) name = options.collision_prefix + name;
    if (out.schema().Contains(name)) {
      return Status::AlreadyExists("column collision even after prefix: " +
                                   name);
    }
    for (const auto& [idx, taken] : kept) {
      (void)idx;
      if (taken == name) {
        return Status::AlreadyExists("column collision even after prefix: " +
                                     name);
      }
    }
    kept.emplace_back(c, std::move(name));
  }

  std::vector<Column> gathered;
  gathered.reserve(kept.size());
  for (const auto& [c, name] : kept) {
    (void)name;
    gathered.emplace_back(right.schema().field(c).type);
  }
  // Gather a slice of the matched rows into `col`, with the exact per-row
  // logic of the serial reference loop.
  auto gather_range = [&](size_t k, size_t lo, size_t hi, Column* col) {
    const Column& src = right.column(kept[k].first);
    for (size_t i = lo; i < hi; ++i) {
      int64_t rr = right_rows[i];
      if (rr < 0 || src.IsNull(static_cast<size_t>(rr))) {
        col->AppendNull();
      } else {
        Status st = col->Append(src.GetValue(static_cast<size_t>(rr)));
        MESA_CHECK(st.ok());
      }
    }
  };
  const size_t out_rows = right_rows.size();
  if (out_rows >= kJoinParallelThreshold && DataPlaneParallel()) {
    // Morsel-parallel over (column x fixed row chunk) fragments — so even
    // a single wide gather scales — concatenated per column in chunk
    // order. AppendFrom copies fragment runs verbatim, so the assembled
    // column is byte-identical to the serial gather at any thread count.
    const size_t num_chunks =
        (out_rows + kJoinMorselRows - 1) / kJoinMorselRows;
    std::vector<std::vector<Column>> fragments(kept.size());
    for (size_t k = 0; k < kept.size(); ++k) {
      fragments[k].reserve(num_chunks);
      for (size_t c = 0; c < num_chunks; ++c) {
        fragments[k].emplace_back(right.schema().field(kept[k].first).type);
      }
    }
    ParallelFor(0, kept.size() * num_chunks, [&](size_t t) {
      CancelCheckpoint();
      const size_t k = t / num_chunks;
      const size_t c = t % num_chunks;
      const size_t lo = c * kJoinMorselRows;
      const size_t hi = std::min(out_rows, lo + kJoinMorselRows);
      gather_range(k, lo, hi, &fragments[k][c]);
    });
    ParallelFor(0, kept.size(), [&](size_t k) {
      CancelCheckpoint();
      for (const Column& fragment : fragments[k]) {
        gathered[k].AppendFrom(fragment);
      }
    });
  } else {
    for (size_t k = 0; k < kept.size(); ++k) {
      CancelCheckpoint();
      gather_range(k, 0, out_rows, &gathered[k]);
    }
  }
  for (size_t k = 0; k < kept.size(); ++k) {
    const Field& f = right.schema().field(kept[k].first);
    MESA_RETURN_IF_ERROR(
        out.AddColumn({kept[k].second, f.type}, std::move(gathered[k])));
  }
  return out;
}

}  // namespace mesa
