#include "query/join.h"

#include <unordered_map>

#include "common/logging.h"
#include "common/metrics.h"

namespace mesa {

Result<Table> HashJoin(const Table& left, const std::string& left_key,
                       const Table& right, const std::string& right_key,
                       const JoinOptions& options) {
  MESA_SPAN("hash_join");
  MESA_COUNT("query/hash_joins");
  MESA_ASSIGN_OR_RETURN(const Column* lkey, left.ColumnByName(left_key));
  MESA_ASSIGN_OR_RETURN(const Column* rkey, right.ColumnByName(right_key));

  // Build: right key -> row (first occurrence wins).
  std::unordered_map<Value, size_t, ValueHash> index;
  index.reserve(right.num_rows());
  size_t duplicate_keys = 0;
  for (size_t r = 0; r < right.num_rows(); ++r) {
    if (rkey->IsNull(r)) continue;
    auto [it, inserted] = index.emplace(rkey->GetValue(r), r);
    (void)it;
    if (!inserted) ++duplicate_keys;
  }
  if (duplicate_keys > 0) {
    MESA_LOG(Warning) << "HashJoin: " << duplicate_keys
                      << " duplicate right-side keys ignored";
  }

  // Probe.
  std::vector<size_t> left_rows;
  std::vector<int64_t> right_rows;  // -1 = unmatched (left join)
  left_rows.reserve(left.num_rows());
  right_rows.reserve(left.num_rows());
  for (size_t r = 0; r < left.num_rows(); ++r) {
    int64_t match = -1;
    if (!lkey->IsNull(r)) {
      auto it = index.find(lkey->GetValue(r));
      if (it != index.end()) match = static_cast<int64_t>(it->second);
    }
    if (match < 0 && options.type == JoinType::kInner) continue;
    left_rows.push_back(r);
    right_rows.push_back(match);
  }

  // Assemble output: all left columns, then right columns minus its key.
  Table out = left.TakeRows(left_rows);
  for (size_t c = 0; c < right.num_columns(); ++c) {
    const Field& f = right.schema().field(c);
    if (f.name == right_key) continue;
    std::string name = f.name;
    if (out.schema().Contains(name)) name = options.collision_prefix + name;
    if (out.schema().Contains(name)) {
      return Status::AlreadyExists("column collision even after prefix: " +
                                   name);
    }
    const Column& src = right.column(c);
    Column col(f.type);
    for (int64_t rr : right_rows) {
      if (rr < 0 || src.IsNull(static_cast<size_t>(rr))) {
        col.AppendNull();
      } else {
        Status st = col.Append(src.GetValue(static_cast<size_t>(rr)));
        MESA_CHECK(st.ok());
      }
    }
    MESA_RETURN_IF_ERROR(out.AddColumn({name, f.type}, std::move(col)));
  }
  return out;
}

}  // namespace mesa
