#ifndef MESA_QUERY_SQL_PARSER_H_
#define MESA_QUERY_SQL_PARSER_H_

#include <string>

#include "common/result.h"
#include "query/query_spec.h"

namespace mesa {

/// Parses the supported aggregate-query dialect into a QuerySpec:
///
///   SELECT <exposure>, <agg>(<outcome>)
///   FROM <table>
///   [WHERE <col> <op> <literal> [AND ...] | <col> IN (<lit>, ...)]
///   GROUP BY <exposure>
///
/// - Identifiers are bare words or "double-quoted"; case is preserved.
/// - String literals use single quotes; numbers are int64 or double;
///   true/false are bool literals.
/// - Operators: = != <> < <= > >=, plus IN (...).
/// - Keywords are case-insensitive.
/// The SELECT list must name the GROUP BY attribute (the exposure) and one
/// aggregate (in either order). Anything else is a parse error with a
/// position-annotated message.
Result<QuerySpec> ParseQuery(const std::string& sql);

}  // namespace mesa

#endif  // MESA_QUERY_SQL_PARSER_H_
