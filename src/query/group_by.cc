#include "query/group_by.h"

#include <algorithm>
#include <array>
#include <map>
#include <utility>

#include "common/cancel.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/rng.h"

namespace mesa {

namespace {

// Morsel-driven partitioned aggregation (Leis et al.): rows are scanned in
// fixed-size morsels, surviving rows are radix-partitioned on the hash of
// their group key, and each partition is aggregated independently. The
// constants are thread-count independent, so the work decomposition — and
// therefore every floating-point accumulation order — is too.
constexpr size_t kGroupByMorselRows = 2048;
constexpr size_t kGroupByPartitions = 64;  // power of two
// Below this row count the serial reference loop wins outright.
constexpr size_t kGroupByParallelThreshold = 4096;
// Fixed slice count of the order-stable parallel merge (phase 3); a
// constant, so slice boundaries depend only on the grouped data.
constexpr size_t kGroupByMergeSlices = 32;
// Below this many output groups the serial fold + finalize wins.
constexpr size_t kGroupByMergeThreshold = 256;

// Hash of one row's group-key tuple. Rows whose tuples compare equal hash
// identically (each tuple position reads one column, so values at a
// position share a physical type), which is what pins a whole group to one
// partition.
uint64_t GroupKeyHash(const std::vector<const Column*>& gcols, size_t r) {
  uint64_t h = 0x9E3779B97F4A7C15ULL;
  for (const Column* c : gcols) {
    h = MixSeed(h, static_cast<uint64_t>(ValueHash{}(c->GetValue(r))));
  }
  return h;
}

using PartitionMap = std::map<std::vector<Value>, AggregateAccumulator>;

// Phase 3 for large results: merges the per-partition maps into the
// globally sorted output and finalizes every group, morsel-parallel and
// order-stable. Partitions hold disjoint, internally sorted key sets, so
// the merged order is unique; the merge is sliced by splitter keys drawn
// from the largest partition — fixed positions, so the slice boundaries
// (hence the output) are a pure function of the data, never of the
// thread count. Each group's finalize is independent; output rows are
// written by precomputed global index. Byte-identical to the serial fold
// (asserted in tests/query_parallel_test.cc).
Result<GroupByResult> MergeFinalizeParallel(
    std::array<PartitionMap, kGroupByPartitions>* parts, size_t input_rows) {
  using Node = PartitionMap::value_type;
  std::array<std::vector<Node*>, kGroupByPartitions> flat;
  ParallelFor(0, kGroupByPartitions, [&](size_t p) {
    PartitionMap& part = (*parts)[p];
    flat[p].reserve(part.size());
    for (Node& kv : part) flat[p].push_back(&kv);
  });
  size_t big = 0;
  size_t total = 0;
  for (size_t p = 0; p < kGroupByPartitions; ++p) {
    total += flat[p].size();
    if (flat[p].size() > flat[big].size()) big = p;
  }

  // Partition p contributes [bounds[p][s], bounds[p][s+1]) to slice s.
  // Slice s covers the key range [splitter s-1, splitter s); duplicate
  // splitters (a pivot partition smaller than the slice count) just
  // yield empty slices.
  constexpr size_t kSlices = kGroupByMergeSlices;
  std::array<std::array<size_t, kSlices + 1>, kGroupByPartitions> bounds;
  std::array<const std::vector<Value>*, kSlices> splitters;  // [1, kSlices)
  for (size_t s = 1; s < kSlices; ++s) {
    splitters[s] = &flat[big][s * flat[big].size() / kSlices]->first;
  }
  ParallelFor(0, kGroupByPartitions, [&](size_t p) {
    bounds[p][0] = 0;
    bounds[p][kSlices] = flat[p].size();
    for (size_t s = 1; s < kSlices; ++s) {
      bounds[p][s] =
          std::lower_bound(flat[p].begin(), flat[p].end(), *splitters[s],
                           [](const Node* e, const std::vector<Value>& key) {
                             return e->first < key;
                           }) -
          flat[p].begin();
    }
  });
  std::array<size_t, kSlices + 1> slice_off{};
  for (size_t s = 0; s < kSlices; ++s) {
    size_t size = 0;
    for (size_t p = 0; p < kGroupByPartitions; ++p) {
      size += bounds[p][s + 1] - bounds[p][s];
    }
    slice_off[s + 1] = slice_off[s] + size;
  }
  MESA_CHECK(slice_off[kSlices] == total);

  GroupByResult out;
  out.input_rows = input_rows;
  out.groups.resize(total);
  std::array<Status, kSlices> slice_err;
  ParallelFor(0, kSlices, [&](size_t s) {
    CancelCheckpoint();
    std::array<size_t, kGroupByPartitions> cur;
    for (size_t p = 0; p < kGroupByPartitions; ++p) cur[p] = bounds[p][s];
    for (size_t at = slice_off[s]; at < slice_off[s + 1]; ++at) {
      int best = -1;
      for (size_t p = 0; p < kGroupByPartitions; ++p) {
        if (cur[p] == bounds[p][s + 1]) continue;
        if (best < 0 ||
            flat[p][cur[p]]->first < flat[best][cur[best]]->first) {
          best = static_cast<int>(p);
        }
      }
      Node* e = flat[best][cur[best]++];
      Result<double> v = e->second.Finalize();
      if (!v.ok()) {
        slice_err[s] = v.status();
        return;
      }
      GroupResult& g = out.groups[at];
      g.group = e->first.front();
      g.values = e->first;
      g.aggregate = *v;
      g.count = e->second.count();
    }
  });
  // Deterministic first-error semantics: lowest slice (therefore lowest
  // global group index) wins, matching what the serial loop would hit.
  for (const Status& st : slice_err) {
    if (!st.ok()) return st;
  }
  return out;
}

}  // namespace

Result<Table> GroupByResult::ToTable(const std::string& group_column,
                                     const std::string& agg_column) const {
  // Group values can be any type; infer from the first group.
  DataType group_type = DataType::kString;
  if (!groups.empty()) {
    group_type = groups[0].group.type();
    if (group_type == DataType::kNull) group_type = DataType::kString;
  }
  Schema schema;
  MESA_RETURN_IF_ERROR(schema.AddField({group_column, group_type}));
  MESA_RETURN_IF_ERROR(schema.AddField({agg_column, DataType::kDouble}));
  Column gcol(group_type);
  Column acol(DataType::kDouble);
  for (const auto& g : groups) {
    MESA_RETURN_IF_ERROR(gcol.Append(g.group));
    acol.AppendDouble(g.aggregate);
  }
  return Table::Make(std::move(schema), {std::move(gcol), std::move(acol)});
}

Result<GroupByResult> GroupByAggregate(const Table& table,
                                       const std::string& group_col,
                                       const std::string& outcome_col,
                                       AggregateFunction agg,
                                       const Conjunction& context) {
  return GroupByAggregate(table, std::vector<std::string>{group_col},
                          outcome_col, agg, context);
}

Result<GroupByResult> GroupByAggregate(
    const Table& table, const std::vector<std::string>& group_cols,
    const std::string& outcome_col, AggregateFunction agg,
    const Conjunction& context) {
  MESA_SPAN("query/group_by");
  MESA_COUNT("query/group_bys");
  if (group_cols.empty()) {
    return Status::InvalidArgument("need at least one grouping column");
  }
  std::vector<const Column*> gcols;
  gcols.reserve(group_cols.size());
  for (const auto& name : group_cols) {
    MESA_ASSIGN_OR_RETURN(const Column* c, table.ColumnByName(name));
    gcols.push_back(c);
  }
  MESA_ASSIGN_OR_RETURN(const Column* ocol, table.ColumnByName(outcome_col));
  if (ocol->type() == DataType::kString) {
    return Status::InvalidArgument("outcome column must be numeric: " +
                                   outcome_col);
  }
  MESA_ASSIGN_OR_RETURN(std::vector<uint8_t> mask,
                        context.EvaluateMask(table));

  const size_t n = table.num_rows();
  size_t input_rows = 0;
  // Groups keyed by the value tuple: std::map gives deterministic (sorted)
  // order, and within a group rows are accumulated in ascending row order.
  // Both paths below preserve exactly that; the parallel one is asserted
  // bit-identical in tests/query_parallel_test.cc.
  std::map<std::vector<Value>, AggregateAccumulator> accs;

  if (n < kGroupByParallelThreshold || !DataPlaneParallel()) {
    std::vector<Value> key(gcols.size());
    for (size_t r = 0; r < n; ++r) {
      // Cancellation checkpoint at morsel granularity, mirroring the
      // parallel path (abort-or-continue only; cannot perturb results).
      if (r % kGroupByMorselRows == 0) CancelCheckpoint();
      if (!mask[r]) continue;
      ++input_rows;
      if (ocol->IsNull(r)) continue;
      bool null_key = false;
      for (size_t c = 0; c < gcols.size(); ++c) {
        if (gcols[c]->IsNull(r)) {
          null_key = true;
          break;
        }
        key[c] = gcols[c]->GetValue(r);
      }
      if (null_key) continue;
      auto it = accs.find(key);
      if (it == accs.end()) {
        it = accs.emplace(key, AggregateAccumulator(agg)).first;
      }
      it->second.Add(ocol->NumericAt(r));
    }
  } else {
    // Phase 1 — morsel scan: apply the context mask and null rules, then
    // bucket each surviving row by the radix partition of its key hash.
    // Buckets keep rows in ascending order within a morsel.
    struct MorselBuckets {
      size_t input_rows = 0;
      std::array<std::vector<uint32_t>, kGroupByPartitions> rows;
    };
    const size_t num_morsels =
        (n + kGroupByMorselRows - 1) / kGroupByMorselRows;
    std::vector<MorselBuckets> morsels(num_morsels);
    ParallelFor(0, num_morsels, [&](size_t m) {
      CancelCheckpoint();
      MorselBuckets& mb = morsels[m];
      const size_t lo = m * kGroupByMorselRows;
      const size_t hi = std::min(n, lo + kGroupByMorselRows);
      for (size_t r = lo; r < hi; ++r) {
        if (!mask[r]) continue;
        ++mb.input_rows;
        if (ocol->IsNull(r)) continue;
        bool null_key = false;
        for (const Column* c : gcols) {
          if (c->IsNull(r)) {
            null_key = true;
            break;
          }
        }
        if (null_key) continue;
        const size_t p = GroupKeyHash(gcols, r) & (kGroupByPartitions - 1);
        mb.rows[p].push_back(static_cast<uint32_t>(r));
      }
    });

    // Phase 2 — per-partition aggregation. A group lives entirely in one
    // partition (its partition is a function of its key), and walking the
    // morsels in order feeds the partition its rows in global row order —
    // so each accumulator sees the exact Add sequence of the serial loop.
    std::array<std::map<std::vector<Value>, AggregateAccumulator>,
               kGroupByPartitions>
        parts;
    ParallelFor(0, kGroupByPartitions, [&](size_t p) {
      CancelCheckpoint();
      auto& part = parts[p];
      std::vector<Value> key(gcols.size());
      for (const MorselBuckets& mb : morsels) {
        for (uint32_t r : mb.rows[p]) {
          for (size_t c = 0; c < gcols.size(); ++c) {
            key[c] = gcols[c]->GetValue(r);
          }
          auto it = part.find(key);
          if (it == part.end()) {
            it = part.emplace(key, AggregateAccumulator(agg)).first;
          }
          it->second.Add(ocol->NumericAt(r));
        }
      }
    });

    for (const MorselBuckets& mb : morsels) input_rows += mb.input_rows;

    // Phase 3 — merge in canonical order: partitions are disjoint by
    // key, so their (already sorted) maps interleave into one unique
    // global order without touching any accumulator. Large results take
    // the sliced parallel merge + finalize; small ones fold serially
    // into `accs` below (bit-identical either way).
    size_t total_groups = 0;
    for (const auto& part : parts) total_groups += part.size();
    if (total_groups >= kGroupByMergeThreshold) {
      return MergeFinalizeParallel(&parts, input_rows);
    }
    for (auto& part : parts) {
      for (auto& [k, acc] : part) {
        accs.emplace(k, std::move(acc));
      }
      part.clear();
    }
  }

  GroupByResult out;
  out.input_rows = input_rows;
  out.groups.reserve(accs.size());
  for (const auto& [k, acc] : accs) {
    MESA_ASSIGN_OR_RETURN(double v, acc.Finalize());
    GroupResult g;
    g.group = k.front();
    g.values = k;
    g.aggregate = v;
    g.count = acc.count();
    out.groups.push_back(std::move(g));
  }
  return out;
}

Result<std::vector<int32_t>> EncodeGroups(const Table& table,
                                          const std::string& column,
                                          std::vector<Value>* group_values) {
  MESA_ASSIGN_OR_RETURN(const Column* col, table.ColumnByName(column));
  std::unordered_map<Value, int32_t, ValueHash> ids;
  std::vector<int32_t> codes(table.num_rows(), -1);
  if (group_values != nullptr) group_values->clear();
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (col->IsNull(r)) continue;
    Value v = col->GetValue(r);
    auto [it, inserted] = ids.emplace(v, static_cast<int32_t>(ids.size()));
    if (inserted && group_values != nullptr) group_values->push_back(v);
    codes[r] = it->second;
  }
  return codes;
}

}  // namespace mesa
