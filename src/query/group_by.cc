#include "query/group_by.h"

#include <algorithm>
#include <map>

#include "common/metrics.h"

namespace mesa {

Result<Table> GroupByResult::ToTable(const std::string& group_column,
                                     const std::string& agg_column) const {
  // Group values can be any type; infer from the first group.
  DataType group_type = DataType::kString;
  if (!groups.empty()) {
    group_type = groups[0].group.type();
    if (group_type == DataType::kNull) group_type = DataType::kString;
  }
  Schema schema;
  MESA_RETURN_IF_ERROR(schema.AddField({group_column, group_type}));
  MESA_RETURN_IF_ERROR(schema.AddField({agg_column, DataType::kDouble}));
  Column gcol(group_type);
  Column acol(DataType::kDouble);
  for (const auto& g : groups) {
    MESA_RETURN_IF_ERROR(gcol.Append(g.group));
    acol.AppendDouble(g.aggregate);
  }
  return Table::Make(std::move(schema), {std::move(gcol), std::move(acol)});
}

Result<GroupByResult> GroupByAggregate(const Table& table,
                                       const std::string& group_col,
                                       const std::string& outcome_col,
                                       AggregateFunction agg,
                                       const Conjunction& context) {
  return GroupByAggregate(table, std::vector<std::string>{group_col},
                          outcome_col, agg, context);
}

Result<GroupByResult> GroupByAggregate(
    const Table& table, const std::vector<std::string>& group_cols,
    const std::string& outcome_col, AggregateFunction agg,
    const Conjunction& context) {
  MESA_SPAN("group_by");
  MESA_COUNT("query/group_bys");
  if (group_cols.empty()) {
    return Status::InvalidArgument("need at least one grouping column");
  }
  std::vector<const Column*> gcols;
  gcols.reserve(group_cols.size());
  for (const auto& name : group_cols) {
    MESA_ASSIGN_OR_RETURN(const Column* c, table.ColumnByName(name));
    gcols.push_back(c);
  }
  MESA_ASSIGN_OR_RETURN(const Column* ocol, table.ColumnByName(outcome_col));
  if (ocol->type() == DataType::kString) {
    return Status::InvalidArgument("outcome column must be numeric: " +
                                   outcome_col);
  }
  MESA_ASSIGN_OR_RETURN(std::vector<uint8_t> mask,
                        context.EvaluateMask(table));

  // std::map keyed by the value tuple gives deterministic (sorted) order.
  std::map<std::vector<Value>, AggregateAccumulator> accs;
  size_t input_rows = 0;
  std::vector<Value> key(gcols.size());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (!mask[r]) continue;
    ++input_rows;
    if (ocol->IsNull(r)) continue;
    bool null_key = false;
    for (size_t c = 0; c < gcols.size(); ++c) {
      if (gcols[c]->IsNull(r)) {
        null_key = true;
        break;
      }
      key[c] = gcols[c]->GetValue(r);
    }
    if (null_key) continue;
    auto it = accs.find(key);
    if (it == accs.end()) {
      it = accs.emplace(key, AggregateAccumulator(agg)).first;
    }
    it->second.Add(ocol->NumericAt(r));
  }

  GroupByResult out;
  out.input_rows = input_rows;
  out.groups.reserve(accs.size());
  for (const auto& [k, acc] : accs) {
    MESA_ASSIGN_OR_RETURN(double v, acc.Finalize());
    GroupResult g;
    g.group = k.front();
    g.values = k;
    g.aggregate = v;
    g.count = acc.count();
    out.groups.push_back(std::move(g));
  }
  return out;
}

Result<std::vector<int32_t>> EncodeGroups(const Table& table,
                                          const std::string& column,
                                          std::vector<Value>* group_values) {
  MESA_ASSIGN_OR_RETURN(const Column* col, table.ColumnByName(column));
  std::unordered_map<Value, int32_t, ValueHash> ids;
  std::vector<int32_t> codes(table.num_rows(), -1);
  if (group_values != nullptr) group_values->clear();
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (col->IsNull(r)) continue;
    Value v = col->GetValue(r);
    auto [it, inserted] = ids.emplace(v, static_cast<int32_t>(ids.size()));
    if (inserted && group_values != nullptr) group_values->push_back(v);
    codes[r] = it->second;
  }
  return codes;
}

}  // namespace mesa
