#ifndef MESA_MISSING_IPW_H_
#define MESA_MISSING_IPW_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "stats/logistic.h"
#include "table/table.h"

namespace mesa {

/// Options for inverse-probability-weight estimation.
struct IpwOptions {
  /// Covariate columns used to model P(R_E = 1 | X). They must be fully
  /// observed (columns from the base dataset, per Section 3.2: "Data
  /// available for this are the values of the attributes in D"). Non-
  /// numeric covariates are entered as dense integer codes.
  std::vector<std::string> covariates;
  /// Propensities are clipped to [clip, 1 - clip] before inversion so a few
  /// extreme predictions cannot dominate the weighted estimator.
  double clip = 0.01;
  LogisticOptions logistic;
};

/// Result of weight estimation for one attribute.
struct IpwWeights {
  /// Per-row weight: P(R_E=1) / P̂(R_E=1 | X_i) for complete cases, 0 for
  /// rows where the attribute is missing. Plug these into the weighted
  /// CMI/MI estimators.
  std::vector<double> weights;
  /// Overall observation rate P(R_E = 1).
  double marginal_rate = 0.0;
  bool model_converged = false;
};

/// Computes IPW weights for `attribute` by fitting a logistic regression of
/// its missingness indicator on the covariates (the paper's pre-processing
/// step). Rows where a covariate is itself null contribute a neutral
/// feature value (covariate mean), keeping the fit defined on all rows.
Result<IpwWeights> ComputeIpwWeights(const Table& table,
                                     const std::string& attribute,
                                     const IpwOptions& options);

}  // namespace mesa

#endif  // MESA_MISSING_IPW_H_
