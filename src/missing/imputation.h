#ifndef MESA_MISSING_IMPUTATION_H_
#define MESA_MISSING_IMPUTATION_H_

#include <string>

#include "common/result.h"
#include "common/rng.h"
#include "table/table.h"

namespace mesa {

/// Baseline strategies for filling nulls (the approaches the paper argues
/// against in Section 3.2; Fig. 3 measures the damage mean imputation does).
enum class ImputationStrategy {
  /// Numeric: column mean. Categorical: most frequent value.
  kMeanOrMode,
  /// Hot deck: each null takes the value of a uniformly drawn observed
  /// cell — a one-draw stand-in for multiple imputation's sampling step.
  kHotDeck,
};

/// Fills all nulls of `column` in place. Returns the number of imputed
/// cells. A fully null column cannot be imputed (error).
Result<size_t> ImputeColumn(Table* table, const std::string& column,
                            ImputationStrategy strategy, Rng* rng = nullptr);

}  // namespace mesa

#endif  // MESA_MISSING_IMPUTATION_H_
