#include "missing/mask.h"

#include <algorithm>
#include <cmath>

namespace mesa {

std::vector<uint8_t> MissingnessIndicator(const Column& column) {
  std::vector<uint8_t> r(column.size());
  for (size_t i = 0; i < column.size(); ++i) {
    r[i] = column.IsValid(i) ? 1 : 0;
  }
  return r;
}

double MissingFraction(const Column& column) { return column.null_fraction(); }

Result<size_t> InjectMissing(Table* table, const std::string& column,
                             double fraction, RemovalMode mode, Rng* rng) {
  if (fraction < 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("fraction must be in [0, 1]");
  }
  MESA_ASSIGN_OR_RETURN(Column* col, table->MutableColumnByName(column));
  std::vector<size_t> present;
  for (size_t i = 0; i < col->size(); ++i) {
    if (col->IsValid(i)) present.push_back(i);
  }
  size_t to_remove = static_cast<size_t>(
      std::llround(fraction * static_cast<double>(present.size())));
  if (to_remove == 0) return static_cast<size_t>(0);

  if (mode == RemovalMode::kRandom) {
    rng->Shuffle(present);
  } else {
    if (col->type() == DataType::kString) {
      return Status::InvalidArgument(
          "biased removal requires a numeric column: " + column);
    }
    // Highest values first.
    std::sort(present.begin(), present.end(), [&](size_t a, size_t b) {
      return col->NumericAt(a) > col->NumericAt(b);
    });
  }
  for (size_t k = 0; k < to_remove; ++k) col->SetNull(present[k]);
  return to_remove;
}

}  // namespace mesa
