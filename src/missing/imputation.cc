#include "missing/imputation.h"

#include <map>

namespace mesa {

Result<size_t> ImputeColumn(Table* table, const std::string& column,
                            ImputationStrategy strategy, Rng* rng) {
  MESA_ASSIGN_OR_RETURN(Column* col, table->MutableColumnByName(column));
  if (col->null_count() == 0) return static_cast<size_t>(0);
  std::vector<size_t> observed;
  for (size_t i = 0; i < col->size(); ++i) {
    if (col->IsValid(i)) observed.push_back(i);
  }
  if (observed.empty()) {
    return Status::FailedPrecondition("cannot impute fully null column: " +
                                      column);
  }

  Value fill;
  if (strategy == ImputationStrategy::kMeanOrMode) {
    if (col->type() == DataType::kString || col->type() == DataType::kBool) {
      // Mode (ties broken by value order for determinism).
      std::map<Value, size_t> counts;
      for (size_t i : observed) ++counts[col->GetValue(i)];
      size_t best = 0;
      for (const auto& [v, c] : counts) {
        if (c > best) {
          best = c;
          fill = v;
        }
      }
    } else {
      double sum = 0.0;
      for (size_t i : observed) sum += col->NumericAt(i);
      double mean = sum / static_cast<double>(observed.size());
      fill = col->type() == DataType::kInt64
                 ? Value::Int(static_cast<int64_t>(mean))
                 : Value::Double(mean);
    }
  }

  size_t imputed = 0;
  for (size_t i = 0; i < col->size(); ++i) {
    if (col->IsValid(i)) continue;
    Value v = fill;
    if (strategy == ImputationStrategy::kHotDeck) {
      if (rng == nullptr) {
        return Status::InvalidArgument("hot-deck imputation needs an Rng");
      }
      size_t donor = observed[rng->NextBelow(observed.size())];
      v = col->GetValue(donor);
    }
    MESA_RETURN_IF_ERROR(col->Set(i, v));
    ++imputed;
  }
  return imputed;
}

}  // namespace mesa
