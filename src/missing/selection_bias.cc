#include "missing/selection_bias.h"

#include <vector>

#include "missing/mask.h"

namespace mesa {

Result<SelectionBiasReport> DetectSelectionBias(
    const Table& table, const std::string& attribute,
    const std::string& outcome, const std::string& exposure,
    const SelectionBiasOptions& options) {
  SelectionBiasReport report;
  report.attribute = attribute;

  MESA_ASSIGN_OR_RETURN(const Column* attr, table.ColumnByName(attribute));
  report.missing_fraction = attr->null_fraction();
  if (attr->null_count() == 0) return report;  // fully observed: never biased

  // Code R_E as a two-valued variable over all rows.
  CodedVariable r;
  r.cardinality = 2;
  std::vector<uint8_t> indicator = MissingnessIndicator(*attr);
  r.codes.assign(indicator.begin(), indicator.end());

  CodedVariable oc, tc;
  if (options.outcome_codes != nullptr) {
    oc = *options.outcome_codes;
  } else {
    MESA_ASSIGN_OR_RETURN(
        Discretized o, DiscretizeColumn(table, outcome, options.discretizer));
    oc = CodedVariable{std::move(o.codes), o.cardinality};
  }
  if (options.exposure_codes != nullptr) {
    tc = *options.exposure_codes;
  } else {
    MESA_ASSIGN_OR_RETURN(
        Discretized t, DiscretizeColumn(table, exposure, options.discretizer));
    tc = CodedVariable{std::move(t.codes), t.cardinality};
  }
  CodedVariable trivial;
  trivial.codes.assign(r.codes.size(), 0);
  trivial.cardinality = 1;

  // Entity-level attributes are missing *blockwise*: R_E is constant
  // within each exposure value. Row-level permutation tests would then
  // treat every row as independent evidence and flag chance block-level
  // alignment as bias, so when R is blockwise the marginal test runs at
  // the block level — one observation per exposure value, with the block's
  // mean outcome as O.
  bool blockwise = true;
  {
    std::vector<int8_t> block_r(static_cast<size_t>(tc.cardinality), -1);
    for (size_t i = 0; i < r.codes.size() && blockwise; ++i) {
      if (tc.codes[i] < 0) continue;
      int8_t ri = static_cast<int8_t>(r.codes[i]);
      int8_t& slot = block_r[static_cast<size_t>(tc.codes[i])];
      if (slot < 0) {
        slot = ri;
      } else if (slot != ri) {
        blockwise = false;
      }
    }
  }

  if (blockwise && tc.cardinality >= 8) {
    // Block-level test: R_block vs binned mean outcome per block.
    std::vector<double> sum(static_cast<size_t>(tc.cardinality), 0.0);
    std::vector<size_t> cnt(static_cast<size_t>(tc.cardinality), 0);
    std::vector<int8_t> rb(static_cast<size_t>(tc.cardinality), 0);
    MESA_ASSIGN_OR_RETURN(const Column* ocol, table.ColumnByName(outcome));
    for (size_t i = 0; i < r.codes.size(); ++i) {
      if (tc.codes[i] < 0 || !ocol->IsValid(i)) continue;
      size_t b = static_cast<size_t>(tc.codes[i]);
      sum[b] += ocol->NumericAt(i);
      ++cnt[b];
      rb[b] = static_cast<int8_t>(r.codes[i]);
    }
    std::vector<double> means;
    CodedVariable r_block;
    r_block.cardinality = 2;
    for (size_t b = 0; b < cnt.size(); ++b) {
      if (cnt[b] == 0) continue;
      means.push_back(sum[b] / static_cast<double>(cnt[b]));
      r_block.codes.push_back(rb[b]);
    }
    Discretized d = DiscretizeVector(means, options.discretizer);
    CodedVariable o_block{std::move(d.codes), d.cardinality};
    CodedVariable block_trivial;
    block_trivial.codes.assign(r_block.codes.size(), 0);
    block_trivial.cardinality = 1;
    IndependenceOptions block_opts = options.independence;
    block_opts.method = IndependenceMethod::kPermutation;
    IndependenceResult block_test = ConditionalIndependenceTest(
        r_block, o_block, block_trivial, block_opts);
    report.mi_with_outcome = block_test.cmi;
    report.p_value_outcome = block_test.p_value;
    report.mi_given_exposure = 0.0;  // R is a function of T here
    report.p_value_given_exposure = 1.0;
    report.biased = !block_test.independent;
    return report;
  }

  IndependenceResult marginal =
      ConditionalIndependenceTest(r, oc, trivial, options.independence);
  IndependenceResult given_t =
      ConditionalIndependenceTest(r, oc, tc, options.independence);
  report.mi_with_outcome = marginal.cmi;
  report.mi_given_exposure = given_t.cmi;
  report.p_value_outcome = marginal.p_value;
  report.p_value_given_exposure = given_t.p_value;
  report.biased = !marginal.independent || !given_t.independent;
  return report;
}

}  // namespace mesa
