#include "missing/ipw.h"

#include <algorithm>
#include <cmath>

#include "missing/mask.h"
#include "query/group_by.h"

namespace mesa {

Result<IpwWeights> ComputeIpwWeights(const Table& table,
                                     const std::string& attribute,
                                     const IpwOptions& options) {
  if (options.covariates.empty()) {
    return Status::InvalidArgument("IPW needs at least one covariate");
  }
  MESA_ASSIGN_OR_RETURN(const Column* attr, table.ColumnByName(attribute));
  const size_t n = attr->size();

  std::vector<uint8_t> r = MissingnessIndicator(*attr);
  size_t observed = 0;
  for (uint8_t v : r) observed += v;
  IpwWeights out;
  out.marginal_rate = n == 0 ? 0.0 : static_cast<double>(observed) / n;
  out.weights.assign(n, 0.0);
  if (observed == 0 || observed == n) {
    // Nothing to reweight: all-missing stays all-zero; fully observed gets
    // unit weights.
    if (observed == n) out.weights.assign(n, 1.0);
    out.model_converged = true;
    return out;
  }

  // Build the design matrix. Numeric covariates enter as values; string /
  // bool covariates enter as dense codes. Null covariate cells take the
  // column mean so the propensity model stays defined everywhere.
  std::vector<std::vector<double>> x(n,
                                     std::vector<double>(options.covariates.size()));
  for (size_t c = 0; c < options.covariates.size(); ++c) {
    const std::string& name = options.covariates[c];
    MESA_ASSIGN_OR_RETURN(const Column* col, table.ColumnByName(name));
    std::vector<double> raw(n, 0.0);
    std::vector<uint8_t> ok(n, 0);
    if (col->type() == DataType::kString) {
      MESA_ASSIGN_OR_RETURN(std::vector<int32_t> codes,
                            EncodeGroups(table, name, nullptr));
      for (size_t i = 0; i < n; ++i) {
        if (codes[i] >= 0) {
          raw[i] = static_cast<double>(codes[i]);
          ok[i] = 1;
        }
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        if (col->IsValid(i)) {
          raw[i] = col->NumericAt(i);
          ok[i] = 1;
        }
      }
    }
    double mean = 0.0;
    size_t cnt = 0;
    for (size_t i = 0; i < n; ++i) {
      if (ok[i]) {
        mean += raw[i];
        ++cnt;
      }
    }
    mean = cnt > 0 ? mean / static_cast<double>(cnt) : 0.0;
    // Standardise for solver conditioning.
    double var = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (ok[i]) {
        double d = raw[i] - mean;
        var += d * d;
      }
    }
    double sd = cnt > 1 ? std::sqrt(var / static_cast<double>(cnt - 1)) : 1.0;
    if (sd <= 0.0) sd = 1.0;
    for (size_t i = 0; i < n; ++i) {
      x[i][c] = ok[i] ? (raw[i] - mean) / sd : 0.0;
    }
  }

  MESA_ASSIGN_OR_RETURN(LogisticModel model,
                        FitLogistic(x, r, options.logistic));
  out.model_converged = model.converged();

  for (size_t i = 0; i < n; ++i) {
    if (!r[i]) continue;  // incomplete case: weight 0
    double p = model.PredictProbability(x[i]);
    p = std::clamp(p, options.clip, 1.0 - options.clip);
    out.weights[i] = out.marginal_rate / p;
  }
  return out;
}

}  // namespace mesa
