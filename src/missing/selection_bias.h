#ifndef MESA_MISSING_SELECTION_BIAS_H_
#define MESA_MISSING_SELECTION_BIAS_H_

#include <string>

#include "common/result.h"
#include "info/independence.h"
#include "stats/discretizer.h"
#include "table/table.h"

namespace mesa {

/// Diagnosis of the missingness mechanism of one extracted attribute.
struct SelectionBiasReport {
  std::string attribute;
  double missing_fraction = 0.0;
  /// I(R_E ; O | C) — dependence of the missingness indicator on the
  /// outcome.
  double mi_with_outcome = 0.0;
  /// I(R_E ; O | T, C) — the same dependence within exposure groups.
  double mi_given_exposure = 0.0;
  double p_value_outcome = 1.0;
  double p_value_given_exposure = 1.0;
  /// True when either test rejects: the sufficient conditions of
  /// Proposition 3.2 ((O ⟂ R_E | ...) marginally and given T) fail and IPW
  /// weights are required. Note the tests are about the *outcome*: entity-
  /// level attributes are always missing blockwise in T, which is harmless
  /// as long as the affected rows are outcome-representative.
  bool biased = false;
};

/// Options for the detector.
struct SelectionBiasOptions {
  /// Row-level tests default to the asymptotic G-test: the detector runs
  /// once per extracted attribute over the full table, where 99
  /// permutations each would dominate preparation time. The block-level
  /// path (entity-wise missingness) always permutes — it has one
  /// observation per entity, too few for the chi-squared asymptotics.
  IndependenceOptions independence{.method = IndependenceMethod::kGTest};
  DiscretizerOptions discretizer;
  /// Precomputed codes for the outcome / exposure columns. The detector
  /// runs once per extracted attribute, so re-discretising O and T on
  /// every call dominates preparation time on large tables; callers that
  /// already hold the codes (QueryAnalysis) pass them here.
  const CodedVariable* outcome_codes = nullptr;
  const CodedVariable* exposure_codes = nullptr;
};

/// Tests whether complete-case analysis of `attribute` is safe for a query
/// over (outcome, exposure): Propositions 3.2/3.3 hold when the selection
/// indicator R_E is independent of O and of T. Both marginal dependencies
/// are tested with the permutation independence test; rejection of either
/// flags selection bias, in which case the estimators must use IPW weights
/// (Section 3.2). An attribute with no missing values is never biased.
Result<SelectionBiasReport> DetectSelectionBias(
    const Table& table, const std::string& attribute,
    const std::string& outcome, const std::string& exposure,
    const SelectionBiasOptions& options = {});

}  // namespace mesa

#endif  // MESA_MISSING_SELECTION_BIAS_H_
