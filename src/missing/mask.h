#ifndef MESA_MISSING_MASK_H_
#define MESA_MISSING_MASK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "table/table.h"

namespace mesa {

/// The selection indicator R_E of Section 3.2: R_E[i] = 1 iff the value of
/// attribute E was extracted (is non-null) for row i.
std::vector<uint8_t> MissingnessIndicator(const Column& column);

/// Fraction of rows with a null in `column`.
double MissingFraction(const Column& column);

/// How to remove values in the Fig. 3 robustness experiments.
enum class RemovalMode {
  /// Missing completely at random.
  kRandom,
  /// Biased removal: the top-x fraction of the *highest* values are
  /// removed (numeric columns only) — the paper's adversarial mode, which
  /// induces selection bias by construction.
  kTopValues,
};

/// Removes `fraction` of the currently present values from `column` of
/// `table` (in place) using the given mode. Returns the number of cells
/// nulled. kTopValues on a non-numeric column is an error.
Result<size_t> InjectMissing(Table* table, const std::string& column,
                             double fraction, RemovalMode mode, Rng* rng);

}  // namespace mesa

#endif  // MESA_MISSING_MASK_H_
