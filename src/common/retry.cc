#include "common/retry.h"

#include "common/metrics.h"

namespace mesa {

bool IsRetryable(StatusCode code) {
  switch (code) {
    case StatusCode::kUnavailable:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

CircuitBreaker::CircuitBreaker(BreakerOptions options)
    : options_(std::move(options)) {}

void CircuitBreaker::TransitionLocked(State next) {
  if (state_ == next) return;
  state_ = next;
  if (options_.metric_prefix.empty()) return;
#if MESA_METRICS_ENABLED
  if (metrics::Enabled()) {
    // kg.breaker.state records the state code at each transition
    // (0 closed, 1 open, 2 half-open); the per-state counters make the
    // transition totals greppable in the JSON snapshot.
    metrics::GetDistribution(options_.metric_prefix + ".state")
        .Record(static_cast<double>(static_cast<int>(next)));
    const char* suffix = next == State::kOpen
                             ? ".opened"
                             : next == State::kHalfOpen ? ".half_open"
                                                        : ".closed";
    metrics::GetCounter(options_.metric_prefix + suffix).Add(1);
  }
#endif
}

bool CircuitBreaker::Allow(uint64_t now_ms, uint64_t* retry_at_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now_ms < open_until_ms_) {
        if (retry_at_ms != nullptr) *retry_at_ms = open_until_ms_;
        return false;
      }
      TransitionLocked(State::kHalfOpen);
      probe_in_flight_ = true;
      return true;
    case State::kHalfOpen:
      // One probe at a time; concurrent callers wait a cooldown out.
      if (probe_in_flight_) {
        if (retry_at_ms != nullptr) {
          *retry_at_ms = now_ms + options_.cooldown_ms;
        }
        return false;
      }
      probe_in_flight_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_failures_ = 0;
  probe_in_flight_ = false;
  TransitionLocked(State::kClosed);
}

void CircuitBreaker::RecordFailure(uint64_t now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  ++consecutive_failures_;
  probe_in_flight_ = false;
  if (state_ == State::kHalfOpen ||
      consecutive_failures_ >= options_.failure_threshold) {
    if (state_ != State::kOpen) ++times_opened_;
    TransitionLocked(State::kOpen);
    open_until_ms_ = now_ms + options_.cooldown_ms;
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

uint64_t CircuitBreaker::times_opened() const {
  std::lock_guard<std::mutex> lock(mu_);
  return times_opened_;
}

}  // namespace mesa
