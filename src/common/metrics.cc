#include "common/metrics.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace mesa {
namespace metrics {
namespace {

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void AtomicAdd(std::atomic<double>* target, double delta) {
  double observed = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(observed, observed + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double v) {
  double observed = target->load(std::memory_order_relaxed);
  while (v < observed && !target->compare_exchange_weak(
                             observed, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double v) {
  double observed = target->load(std::memory_order_relaxed);
  while (v > observed && !target->compare_exchange_weak(
                             observed, v, std::memory_order_relaxed)) {
  }
}

// Log-scale bucket index: 4 buckets per octave. Bucket 0 is the
// underflow bucket for v <= 1 (and non-finite junk); bucket
// 1 + 4*(exp-1) + quarter holds v = m * 2^exp with m in
// [0.5 + quarter/8, 0.5 + (quarter+1)/8).
size_t BucketIndex(double v) {
  if (!(v > 1.0)) return 0;
  int exp = 0;
  double m = std::frexp(v, &exp);  // v = m * 2^exp, m in [0.5, 1)
  int quarter = static_cast<int>((m - 0.5) * 8.0);
  if (quarter < 0) quarter = 0;
  if (quarter > 3) quarter = 3;
  size_t index = 1 + 4 * static_cast<size_t>(exp - 1) +
                 static_cast<size_t>(quarter);
  return index < Distribution::kBuckets ? index : Distribution::kBuckets - 1;
}

// Representative value for a bucket (its geometric-ish midpoint).
double BucketMidpoint(size_t index) {
  if (index == 0) return 1.0;
  size_t offset = index - 1;
  int exp = static_cast<int>(offset / 4) + 1;
  double mantissa = 0.5 + 0.125 * static_cast<double>(offset % 4) + 0.0625;
  return std::ldexp(mantissa, exp);
}

std::atomic<bool> g_enabled{true};

// Registry. Handles are pointers to heap nodes owned by the maps, so
// they stay valid for the life of the process; Reset zeroes values in
// place. Leaked on purpose (metrics may be touched during static
// destruction of other objects).
struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, std::unique_ptr<Counter>> counters;
  std::unordered_map<std::string, std::unique_ptr<Distribution>>
      distributions;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

struct TraceState {
  std::string path;
  std::string trace_id;
  // Span-site cache: full path -> distribution handle, so steady-state
  // span exit is one hash lookup with no registry lock.
  std::unordered_map<std::string, Distribution*> span_distributions;
};

// Bounded ring of completed traced requests.
constexpr size_t kTraceLogCapacity = 4096;

struct TraceLog {
  std::mutex mu;
  std::deque<TraceEvent> events;
};

TraceLog& GetTraceLog() {
  static TraceLog* log = new TraceLog();  // leaked, like the registry
  return *log;
}

TraceState& Tls() {
  thread_local TraceState state;
  return state;
}

void AppendJsonDouble(std::string* out, double v) {
  char buf[64];
  if (!std::isfinite(v)) {
    *out += "0";  // min/max of an empty distribution; keep JSON valid
    return;
  }
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out += buf;
}

void AppendJsonString(std::string* out, const std::string& s) {
  *out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      *out += '\\';
      *out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      *out += c;
    }
  }
  *out += '"';
}

}  // namespace

void Distribution::Record(double v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, v);
  AtomicMin(&min_, v);
  AtomicMax(&max_, v);
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
}

Distribution::Stats Distribution::GetStats() const {
  Stats stats;
  uint64_t histogram[kBuckets];
  uint64_t total = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    histogram[i] = buckets_[i].load(std::memory_order_relaxed);
    total += histogram[i];
  }
  stats.count = count_.load(std::memory_order_relaxed);
  stats.sum = sum_.load(std::memory_order_relaxed);
  if (total == 0) return stats;
  stats.min = min_.load(std::memory_order_relaxed);
  stats.max = max_.load(std::memory_order_relaxed);

  auto quantile = [&](double q) {
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total - 1));
    uint64_t seen = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
      seen += histogram[i];
      if (seen > rank) {
        double estimate = BucketMidpoint(i);
        // The exact extremes bound the histogram's estimate.
        if (estimate < stats.min) estimate = stats.min;
        if (estimate > stats.max) estimate = stats.max;
        return estimate;
      }
    }
    return stats.max;
  };
  stats.p50 = quantile(0.50);
  stats.p99 = quantile(0.99);
  return stats;
}

void Distribution::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  for (size_t i = 0; i < kBuckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

Counter& GetCounter(std::string_view name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto& slot = registry.counters[std::string(name)];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Distribution& GetDistribution(std::string_view name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto& slot = registry.distributions[std::string(name)];
  if (!slot) slot = std::make_unique<Distribution>();
  return *slot;
}

uint64_t CounterValue(std::string_view name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.counters.find(std::string(name));
  return it == registry.counters.end() ? 0 : it->second->Value();
}

void RecordTrace(TraceEvent event) {
  if (!Enabled()) return;
  TraceLog& log = GetTraceLog();
  std::lock_guard<std::mutex> lock(log.mu);
  if (log.events.size() >= kTraceLogCapacity) log.events.pop_front();
  log.events.push_back(std::move(event));
}

std::vector<TraceEvent> TraceEvents() {
  TraceLog& log = GetTraceLog();
  std::lock_guard<std::mutex> lock(log.mu);
  return std::vector<TraceEvent>(log.events.begin(), log.events.end());
}

const std::string& CurrentTraceId() { return Tls().trace_id; }

TraceIdGuard::TraceIdGuard(const std::string& id) {
  saved_ = std::move(Tls().trace_id);
  Tls().trace_id = id;
}

TraceIdGuard::~TraceIdGuard() { Tls().trace_id = std::move(saved_); }

Snapshot TakeSnapshot() {
  Registry& registry = GetRegistry();
  // Copy handles under the lock, read values outside it (reads are
  // atomic and handles never die).
  std::map<std::string, Counter*> counters;
  std::map<std::string, Distribution*> distributions;
  {
    std::lock_guard<std::mutex> lock(registry.mu);
    for (const auto& [name, counter] : registry.counters) {
      counters[name] = counter.get();
    }
    for (const auto& [name, distribution] : registry.distributions) {
      distributions[name] = distribution.get();
    }
  }
  Snapshot snapshot;
  snapshot.counters.reserve(counters.size());
  for (const auto& [name, counter] : counters) {
    snapshot.counters.emplace_back(name, counter->Value());
  }
  snapshot.distributions.reserve(distributions.size());
  for (const auto& [name, distribution] : distributions) {
    snapshot.distributions.emplace_back(name, distribution->GetStats());
  }
  snapshot.traces = TraceEvents();
  return snapshot;
}

void ResetAll() {
  Registry& registry = GetRegistry();
  {
    std::lock_guard<std::mutex> lock(registry.mu);
    for (auto& [name, counter] : registry.counters) counter->Reset();
    for (auto& [name, distribution] : registry.distributions) {
      distribution->Reset();
    }
  }
  TraceLog& log = GetTraceLog();
  std::lock_guard<std::mutex> lock(log.mu);
  log.events.clear();
}

std::string ToJson(const Snapshot& snapshot) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ',';
    first = false;
    AppendJsonString(&out, name);
    out += ':';
    out += std::to_string(value);
  }
  out += "},\"distributions\":{";
  first = true;
  char buf[64];
  for (const auto& [name, stats] : snapshot.distributions) {
    if (!first) out += ',';
    first = false;
    AppendJsonString(&out, name);
    std::snprintf(buf, sizeof(buf), ":{\"count\":%llu,\"sum\":",
                  static_cast<unsigned long long>(stats.count));
    out += buf;
    AppendJsonDouble(&out, stats.sum);
    out += ",\"min\":";
    AppendJsonDouble(&out, stats.min);
    out += ",\"max\":";
    AppendJsonDouble(&out, stats.max);
    out += ",\"p50\":";
    AppendJsonDouble(&out, stats.p50);
    out += ",\"p99\":";
    AppendJsonDouble(&out, stats.p99);
    out += '}';
  }
  out += "},\"traces\":[";
  first = true;
  for (const TraceEvent& t : snapshot.traces) {
    if (!first) out += ',';
    first = false;
    out += "{\"id\":";
    AppendJsonString(&out, t.id);
    out += ",\"name\":";
    AppendJsonString(&out, t.name);
    out += ",\"ok\":";
    out += t.ok ? "true" : "false";
    std::snprintf(buf, sizeof(buf), ",\"ns\":%llu}",
                  static_cast<unsigned long long>(t.duration_ns));
    out += buf;
  }
  out += "]}";
  return out;
}

std::string SnapshotJson() { return ToJson(TakeSnapshot()); }

const std::string& CurrentPath() { return Tls().path; }

PathGuard::PathGuard(const std::string& path) {
  saved_ = std::move(Tls().path);
  Tls().path = path;
}

PathGuard::~PathGuard() { Tls().path = std::move(saved_); }

ScopedSpan::ScopedSpan(std::string_view name) {
  if (!Enabled()) return;
  active_ = true;
  TraceState& state = Tls();
  saved_length_ = state.path.size();
  if (!state.path.empty()) state.path += '/';
  state.path.append(name.data(), name.size());
  start_ns_ = NowNanos();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  uint64_t elapsed = NowNanos() - start_ns_;
  TraceState& state = Tls();
  auto [it, inserted] = state.span_distributions.try_emplace(state.path);
  if (inserted) it->second = &GetDistribution(state.path);
  it->second->Record(static_cast<double>(elapsed));
  state.path.resize(saved_length_);
}

}  // namespace metrics
}  // namespace mesa
