#ifndef MESA_COMMON_LOGGING_H_
#define MESA_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace mesa {

/// Severity levels for library diagnostics.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Defaults to kWarning
/// so the library is quiet unless asked otherwise.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink that emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Aborts the process with a message; used by MESA_CHECK.
[[noreturn]] void FatalError(const char* file, int line, const std::string& msg);

}  // namespace internal

#define MESA_LOG(level)                                                  \
  ::mesa::internal::LogMessage(::mesa::LogLevel::k##level, __FILE__, __LINE__)

/// Invariant check that is active in all build modes. Reserved for
/// programming errors (not data errors, which surface as Status).
#define MESA_CHECK(cond)                                                   \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::mesa::internal::FatalError(__FILE__, __LINE__,                     \
                                   "MESA_CHECK failed: " #cond);           \
    }                                                                      \
  } while (0)

#define MESA_DCHECK(cond) assert(cond)

}  // namespace mesa

#endif  // MESA_COMMON_LOGGING_H_
