#ifndef MESA_COMMON_LRU_CACHE_H_
#define MESA_COMMON_LRU_CACHE_H_

/// A thread-safe, sharded LRU map used for memoization caches (the
/// sufficient-statistics cache of src/info is the main client). Keys are
/// 64-bit hashes; the shard is picked from the key's low bits so
/// concurrent lookups of unrelated keys rarely contend on one mutex.
///
/// Capacity is expressed as a *cost budget per shard*: every entry
/// carries a caller-supplied cost (1 for fixed-size values, the element
/// count for variable-size ones), and inserting past the budget evicts
/// least-recently-used entries until the new entry fits. An entry whose
/// cost alone exceeds the budget is not admitted (the value is still
/// returned to the caller — the cache only declines to keep it).
///
/// Determinism: the cache stores pure function results keyed by content
/// hashes, so a hit returns exactly the value a recompute would produce.
/// Eviction order depends on thread interleaving, but eviction only
/// affects hit rates — never values.

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace mesa {

template <typename Value>
class ShardedLruCache {
 public:
  /// `cost_budget` is the per-shard budget; total memory is bounded by
  /// kNumShards * cost_budget * sizeof(cost unit).
  explicit ShardedLruCache(uint64_t cost_budget)
      : cost_budget_(cost_budget) {}

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// Looks up `key`; on a hit copies the value into `*value` and marks
  /// the entry most-recently-used.
  bool Lookup(uint64_t key, Value* value) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) return false;
    shard.entries.splice(shard.entries.begin(), shard.entries, it->second);
    *value = it->second->value;
    return true;
  }

  /// Inserts (or refreshes) `key`, evicting LRU entries until the shard
  /// is within budget. Re-inserting an existing key refreshes recency but
  /// keeps the first value (all callers compute the same pure function).
  void Insert(uint64_t key, Value value, uint64_t cost) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.entries.splice(shard.entries.begin(), shard.entries, it->second);
      return;
    }
    if (cost > cost_budget_) return;  // would never fit; don't thrash
    while (shard.cost + cost > cost_budget_ && !shard.entries.empty()) {
      const Entry& victim = shard.entries.back();
      shard.cost -= victim.cost;
      shard.index.erase(victim.key);
      shard.entries.pop_back();
      ++shard.evictions;
    }
    shard.entries.push_front(Entry{key, std::move(value), cost});
    shard.index.emplace(key, shard.entries.begin());
    shard.cost += cost;
  }

  /// Drops every entry (stats are kept).
  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.entries.clear();
      shard.index.clear();
      shard.cost = 0;
    }
  }

  /// Current number of entries (approximate under concurrent writers).
  size_t size() const {
    size_t n = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      n += shard.index.size();
    }
    return n;
  }

  /// Total cost currently held (approximate under concurrent writers).
  uint64_t cost() const {
    uint64_t c = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      c += shard.cost;
    }
    return c;
  }

  /// Total entries evicted to make room since construction.
  uint64_t evictions() const {
    uint64_t e = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      e += shard.evictions;
    }
    return e;
  }

  uint64_t cost_budget() const { return cost_budget_; }

 private:
  static constexpr size_t kNumShards = 16;

  struct Entry {
    uint64_t key;
    Value value;
    uint64_t cost;
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> entries;  // front = most recently used
    std::unordered_map<uint64_t, typename std::list<Entry>::iterator> index;
    uint64_t cost = 0;
    uint64_t evictions = 0;
  };

  Shard& ShardFor(uint64_t key) { return shards_[key % kNumShards]; }

  const uint64_t cost_budget_;
  Shard shards_[kNumShards];
};

}  // namespace mesa

#endif  // MESA_COMMON_LRU_CACHE_H_
