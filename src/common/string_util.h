#ifndef MESA_COMMON_STRING_UTIL_H_
#define MESA_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace mesa {

/// Splits `s` on `delim`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// ASCII lower-casing.
std::string ToLower(std::string_view s);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Case-insensitive equality over ASCII.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Parses a double; returns false on any trailing garbage or empty input.
bool ParseDouble(std::string_view s, double* out);

/// Parses a signed 64-bit integer; returns false on overflow or garbage.
bool ParseInt64(std::string_view s, int64_t* out);

/// Normalises an entity label for matching: lower-case, collapse runs of
/// whitespace/punctuation to single underscores, strip diacritics-free
/// non-alphanumerics. "Russian Federation" -> "russian_federation".
std::string NormalizeEntityName(std::string_view s);

/// Levenshtein edit distance (used by the NED entity linker for fuzzy
/// fallback matching).
size_t EditDistance(std::string_view a, std::string_view b);

}  // namespace mesa

#endif  // MESA_COMMON_STRING_UTIL_H_
