#ifndef MESA_COMMON_PARALLEL_SORT_H_
#define MESA_COMMON_PARALLEL_SORT_H_

/// Morsel-parallel *stable* LSD radix sort. This is the primitive under
/// the sort-packed CMI kernel (src/info/cmi_kernel.h): packed row keys
/// are sorted ascending and then run-length counted into a sparse cube
/// whose summation order is canonical. Stability is load-bearing there —
/// rows carrying equal keys must keep their input (row) order so every
/// per-cell floating-point accumulation replays the serial order.
///
/// Determinism contract (same as common/parallel.h): the output is the
/// unique stable ascending order of the input, so it is byte-identical at
/// any thread count — and identical to the serial std::stable_sort
/// fallback used below the parallel threshold. The parallel plan is the
/// classic three-phase counting sort per 8-bit digit:
///
///   1. per-chunk digit histograms (chunk boundaries are fixed constants,
///      never thread-count dependent),
///   2. an exclusive scan over (digit-major, chunk-minor) counts, which
///      assigns every element a unique destination slot,
///   3. a parallel scatter — each chunk writes to disjoint, precomputed
///      slots, preserving chunk-internal order, hence stability.
///
/// Keys must fit in `key_bits` low bits (higher bits, if any, are ignored
/// by the digit extraction only when they are beyond the last pass — the
/// caller guarantees keys < 2^key_bits; this is checked in debug builds).

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <vector>

#include "common/cancel.h"
#include "common/logging.h"
#include "common/parallel.h"

namespace mesa {

namespace sort_internal {

/// Fixed chunk size for histogram/scatter phases. A constant (never a
/// function of the thread count) so destination slots are a pure function
/// of the data.
constexpr size_t kRadixChunkRows = size_t{1} << 15;

/// Below this size one std::stable_sort call beats the multi-pass radix
/// machinery outright.
constexpr size_t kRadixParallelThreshold = size_t{1} << 15;

}  // namespace sort_internal

/// Stable ascending sort of `data` by the low `key_bits` bits of
/// `key_of(element)` (a uint64_t). `key_of` must be pure. Elements must be
/// trivially copyable in spirit (they are moved through a scratch buffer
/// by assignment). Every key must be < 2^key_bits.
template <typename T, typename KeyFn>
void StableRadixSortByKey(std::vector<T>* data, int key_bits,
                          const KeyFn& key_of) {
  using sort_internal::kRadixChunkRows;
  using sort_internal::kRadixParallelThreshold;
  const size_t n = data->size();
  if (n < 2) return;
  MESA_DCHECK(key_bits >= 1 && key_bits <= 64);

  // Small inputs take one std::stable_sort call; everything else runs the
  // radix plan below — including on a single thread (ParallelFor runs the
  // chunks inline), where the linear-time passes still beat a comparison
  // sort by a wide margin. Output is the unique stable order either way.
  if (n < kRadixParallelThreshold) {
    std::stable_sort(data->begin(), data->end(),
                     [&](const T& a, const T& b) {
                       return key_of(a) < key_of(b);
                     });
    return;
  }

  const int passes = (key_bits + 7) / 8;
  // Honor the data-plane toggle by capping the pool, not by changing the
  // algorithm: the chunk plan (and so the output) is the same either way.
  const size_t max_threads = DataPlaneParallel() ? 0 : 1;
  std::vector<T> scratch(n);
  T* src = data->data();
  T* dst = scratch.data();
  const size_t num_chunks = (n + kRadixChunkRows - 1) / kRadixChunkRows;
  // hist[c][d]: elements of chunk c whose current digit is d. Chunk counts
  // fit 32 bits (kRadixChunkRows << 2^32); running offsets need size_t.
  std::vector<std::array<uint32_t, 256>> hist(num_chunks);
  std::vector<size_t> starts(num_chunks * 256);

  for (int pass = 0; pass < passes; ++pass) {
    const int shift = pass * 8;
    ParallelFor(
        0, num_chunks,
        [&](size_t c) {
          CancelCheckpoint();
          std::array<uint32_t, 256>& h = hist[c];
          h.fill(0);
          const size_t lo = c * kRadixChunkRows;
          const size_t hi = std::min(n, lo + kRadixChunkRows);
          for (size_t i = lo; i < hi; ++i) {
            MESA_DCHECK(key_bits == 64 ||
                        key_of(src[i]) < (uint64_t{1} << key_bits));
            ++h[(key_of(src[i]) >> shift) & 0xFF];
          }
        },
        max_threads);
    // Exclusive scan in (digit-major, chunk-minor) order: all of digit 0
    // across the chunks in order, then digit 1, ... — exactly the layout
    // a serial stable counting sort would produce.
    size_t run = 0;
    for (size_t d = 0; d < 256; ++d) {
      for (size_t c = 0; c < num_chunks; ++c) {
        starts[c * 256 + d] = run;
        run += hist[c][d];
      }
    }
    ParallelFor(
        0, num_chunks,
        [&](size_t c) {
          CancelCheckpoint();
          std::array<size_t, 256> cursor;
          for (size_t d = 0; d < 256; ++d) cursor[d] = starts[c * 256 + d];
          const size_t lo = c * kRadixChunkRows;
          const size_t hi = std::min(n, lo + kRadixChunkRows);
          for (size_t i = lo; i < hi; ++i) {
            dst[cursor[(key_of(src[i]) >> shift) & 0xFF]++] = src[i];
          }
        },
        max_threads);
    std::swap(src, dst);
  }
  if (src != data->data()) {
    // Odd pass count: the sorted sequence sits in the scratch buffer.
    std::copy(scratch.begin(), scratch.end(), data->begin());
  }
}

/// Stable ascending sort of raw 64-bit keys (identity key function).
inline void StableRadixSort(std::vector<uint64_t>* keys, int key_bits) {
  StableRadixSortByKey(keys, key_bits, [](uint64_t k) { return k; });
}

}  // namespace mesa

#endif  // MESA_COMMON_PARALLEL_SORT_H_
