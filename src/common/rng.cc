#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace mesa {

namespace {

// SplitMix64, used to expand the seed into the xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t MixSeed(uint64_t seed, uint64_t index) {
  // One SplitMix64 step over a seed/index combination; the +1 keeps
  // MixSeed(s, 0) distinct from the raw seed.
  uint64_t x = seed + (index + 1) * 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  // Avoid the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBelow(uint64_t n) {
  MESA_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  MESA_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextGaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

double Rng::NextExponential(double lambda) {
  MESA_CHECK(lambda > 0);
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  return -std::log(u) / lambda;
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  MESA_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  MESA_CHECK(total > 0.0);
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::Permutation(size_t n) {
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  Shuffle(idx);
  return idx;
}

}  // namespace mesa
