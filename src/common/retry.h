#ifndef MESA_COMMON_RETRY_H_
#define MESA_COMMON_RETRY_H_

/// Generic resilience primitives for calls against unreliable services:
/// retryable-vs-permanent Status classification, an exponential-backoff
/// retry loop with deterministic seeded jitter and a per-call deadline
/// budget, and a circuit breaker (closed -> open -> half-open).
///
/// All waiting happens on a *virtual clock* measured in milliseconds:
/// backoff "sleeps" and injected latencies advance the clock instead of
/// blocking the thread. That keeps every retry schedule, breaker
/// transition, and deadline decision bit-for-bit reproducible under any
/// thread count and on any machine — the property the chaos tests pin
/// down (see docs/robustness.md). A wall-clock binding can be swapped in
/// later without touching callers.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "common/rng.h"
#include "common/status.h"

namespace mesa {

/// Deterministic monotonic time source, in virtual milliseconds.
/// Thread-safe; starts at zero.
class VirtualClock {
 public:
  uint64_t NowMs() const { return now_ms_.load(std::memory_order_relaxed); }
  void AdvanceMs(uint64_t ms) {
    now_ms_.fetch_add(ms, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> now_ms_{0};
};

/// True for Status codes worth retrying: the service may recover
/// (kUnavailable — including detected truncated/short responses),
/// the per-attempt budget ran out (kDeadlineExceeded), or we were rate
/// limited (kResourceExhausted). Everything else — bad arguments, missing
/// entities, malformed data, internal faults — is permanent: retrying
/// cannot change the answer.
bool IsRetryable(StatusCode code);

/// Backoff / budget configuration of one retrying call.
struct RetryOptions {
  /// Maximum attempts per call; 0 = unbounded (the deadline is the only
  /// stop condition, which is what the chaos determinism tests rely on:
  /// a transient fault plan is always out-waited).
  size_t max_attempts = 0;
  /// First backoff wait, doubled (times `backoff_multiplier`) per retry.
  uint64_t initial_backoff_ms = 10;
  double backoff_multiplier = 2.0;
  /// Backoff cap.
  uint64_t max_backoff_ms = 1000;
  /// Jitter fraction: each wait is scaled by a factor drawn uniformly
  /// from [1 - jitter, 1 + jitter] with a deterministic per-call stream.
  double jitter = 0.25;
  /// Per-call budget in virtual milliseconds; 0 = no deadline. When the
  /// budget is exhausted the call fails with kDeadlineExceeded.
  uint64_t deadline_ms = 10000;
  /// Base seed of the jitter streams; mixed with the per-call key so the
  /// schedule of one call never depends on the calls that ran before it.
  uint64_t seed = 0x5EEDF00DULL;
};

/// Circuit-breaker configuration.
struct BreakerOptions {
  /// Consecutive attempt failures that trip the breaker open.
  size_t failure_threshold = 5;
  /// Virtual time the breaker stays open before allowing one half-open
  /// probe attempt.
  uint64_t cooldown_ms = 500;
  /// Metric-name prefix for transition counters and the state
  /// distribution, e.g. "kg.breaker". Empty disables breaker metrics.
  std::string metric_prefix;
};

/// Classic three-state circuit breaker over attempt outcomes:
///
///   closed --(N consecutive failures)--> open
///   open --(cooldown elapsed)--> half-open (one probe allowed)
///   half-open --success--> closed
///   half-open --failure--> open (cooldown restarts)
///
/// Time is the caller's VirtualClock, passed into each transition-making
/// call. Thread-safe.
class CircuitBreaker {
 public:
  enum class State { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  explicit CircuitBreaker(BreakerOptions options = {});

  /// Whether an attempt may proceed at `now_ms`. When the breaker is open
  /// and cooling down, returns false and sets `*retry_at_ms` to the
  /// virtual time at which the next (half-open) probe unlocks.
  bool Allow(uint64_t now_ms, uint64_t* retry_at_ms);

  void RecordSuccess();
  void RecordFailure(uint64_t now_ms);

  State state() const;
  /// Total closed->open transitions (for tests and reports).
  uint64_t times_opened() const;

 private:
  void TransitionLocked(State next);

  BreakerOptions options_;
  mutable std::mutex mu_;
  State state_ = State::kClosed;
  size_t consecutive_failures_ = 0;
  uint64_t open_until_ms_ = 0;
  bool probe_in_flight_ = false;
  uint64_t times_opened_ = 0;
};

/// Outcome of RetryCall, with enough bookkeeping for callers to feed
/// stats like ExtractionStats::lookups_retried.
struct RetryResult {
  Status status;             ///< final status (OK on success).
  size_t attempts = 0;       ///< attempts actually made.
  bool retried = false;      ///< at least one retry happened.
  uint64_t waited_ms = 0;    ///< virtual time spent in backoff + breaker waits.
};

/// Runs `attempt` (any callable returning Status) under `options`:
/// retries retryable failures with exponential backoff + seeded jitter,
/// charges every wait against the per-call deadline, and honours
/// `breaker` (when non-null) by waiting out its cooldown on the virtual
/// clock rather than failing fast — an open breaker converts into
/// latency, not data loss, until the deadline runs out. `call_key` seeds
/// the jitter stream; pass a hash of the operation + argument so the
/// schedule is a pure function of the call. A header template so the
/// per-lookup hot path (one successful attempt) inlines without a
/// std::function allocation.
template <typename Attempt>
RetryResult RetryCall(const RetryOptions& options, VirtualClock* clock,
                      CircuitBreaker* breaker, uint64_t call_key,
                      const Attempt& attempt) {
  RetryResult out;
  Rng jitter_rng(MixSeed(options.seed, call_key));
  const uint64_t start_ms = clock->NowMs();
  const uint64_t deadline_ms =
      options.deadline_ms == 0 ? UINT64_MAX : start_ms + options.deadline_ms;
  double backoff = static_cast<double>(options.initial_backoff_ms);

  // Waits `ms` on the virtual clock, charging the deadline. Returns false
  // (and sets the final status) when the budget cannot cover the wait.
  auto wait = [&](uint64_t ms) {
    uint64_t now = clock->NowMs();
    if (now + ms > deadline_ms) {
      out.status = Status::DeadlineExceeded(
          "retry budget exhausted after " + std::to_string(out.attempts) +
          " attempt(s)");
      return false;
    }
    clock->AdvanceMs(ms);
    out.waited_ms += ms;
    return true;
  };

  while (true) {
    // An open breaker is waited out (it converts to latency), so a
    // transiently failing endpoint never turns into silent data loss
    // while budget remains.
    uint64_t retry_at = 0;
    while (breaker != nullptr && !breaker->Allow(clock->NowMs(), &retry_at)) {
      uint64_t now = clock->NowMs();
      uint64_t wait_ms = retry_at > now ? retry_at - now : 1;
      if (!wait(wait_ms)) return out;
    }
    if (clock->NowMs() > deadline_ms) {
      out.status = Status::DeadlineExceeded(
          "call deadline exceeded before attempt " +
          std::to_string(out.attempts + 1));
      if (breaker != nullptr) breaker->RecordFailure(clock->NowMs());
      return out;
    }

    ++out.attempts;
    Status st = attempt();
    if (st.ok()) {
      if (breaker != nullptr) breaker->RecordSuccess();
      out.status = Status::OK();
      return out;
    }
    if (breaker != nullptr) breaker->RecordFailure(clock->NowMs());
    if (!IsRetryable(st.code())) {
      out.status = std::move(st);
      return out;
    }
    if (options.max_attempts != 0 && out.attempts >= options.max_attempts) {
      out.status = Status(st.code(), st.message() + " (after " +
                                         std::to_string(out.attempts) +
                                         " attempts)");
      return out;
    }

    // Exponential backoff with deterministic jitter from the per-call
    // stream: the schedule depends only on (seed, call_key).
    double factor = 1.0;
    if (options.jitter > 0.0) {
      factor = 1.0 - options.jitter +
               2.0 * options.jitter * jitter_rng.NextDouble();
    }
    uint64_t wait_ms = static_cast<uint64_t>(std::llround(
        std::min(backoff, static_cast<double>(options.max_backoff_ms)) *
        factor));
    wait_ms = std::max<uint64_t>(wait_ms, 1);
    if (!wait(wait_ms)) return out;
    backoff = std::min(backoff * options.backoff_multiplier,
                       static_cast<double>(options.max_backoff_ms));
    out.retried = true;
  }
}

/// FNV-1a 64-bit hash — the stable string hash used for per-call keys and
/// fault-plan decisions (std::hash is not stable across libraries).
/// constexpr so operation-name tags fold at compile time.
constexpr uint64_t StableHash64(std::string_view s) {
  uint64_t h = 14695981039346656037ULL;  // FNV offset basis
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;  // FNV prime
  }
  return h;
}

/// Word-granular FNV-1a over a raw byte span: absorbs 8 bytes per
/// multiply (plus a padded tail word carrying the residue length), which
/// is ~6x the throughput of the byte-wise loop above. Used for the
/// content fingerprints of the sufficient-statistics cache
/// (src/info/info_cache.h), where megabytes of codes are hashed per
/// call. Deterministic within a process and across thread counts — the
/// only property the cache needs — but unlike StableHash64(string_view)
/// the value depends on host byte order, so never persist it.
inline uint64_t StableHash64Bytes(const void* data, size_t size) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 14695981039346656037ULL ^ (size * 1099511628211ULL);
  size_t words = size / 8;
  for (size_t i = 0; i < words; ++i) {
    uint64_t w;
    __builtin_memcpy(&w, p + i * 8, 8);
    h ^= w;
    h *= 1099511628211ULL;
  }
  uint64_t tail = 0;
  size_t rest = size % 8;
  if (rest > 0) {
    __builtin_memcpy(&tail, p + words * 8, rest);
    h ^= tail;
    h *= 1099511628211ULL;
  }
  // Final avalanche (splitmix64 tail): FNV's low bits are weak, and the
  // cache shards by the low bits of the key.
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBULL;
  h ^= h >> 31;
  return h;
}

}  // namespace mesa

#endif  // MESA_COMMON_RETRY_H_
