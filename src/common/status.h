#ifndef MESA_COMMON_STATUS_H_
#define MESA_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace mesa {

/// Error categories used across the library. Modelled after the RocksDB
/// Status idiom: the library does not throw across its public API; every
/// fallible operation returns a Status or a Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kAlreadyExists,
  kIOError,
  kNotImplemented,
  kInternal,
  // Remote-service conditions (the KG endpoint layer). kUnavailable and
  // kResourceExhausted are transient by convention; kDeadlineExceeded marks
  // an exhausted per-call time budget. See common/retry.h::IsRetryable.
  kUnavailable,
  kDeadlineExceeded,
  kResourceExhausted,
  // The caller explicitly gave up on the request (common/cancel.h). Not
  // retryable: the cancellation is a decision, not a transient condition.
  kCancelled,
};

/// A lightweight success-or-error value. Cheap to copy on the success path
/// (no allocation); carries a message only on error.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: bad column".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Returns early from the enclosing function if `expr` is a non-OK Status.
#define MESA_RETURN_IF_ERROR(expr)             \
  do {                                         \
    ::mesa::Status _st = (expr);               \
    if (!_st.ok()) return _st;                 \
  } while (0)

}  // namespace mesa

#endif  // MESA_COMMON_STATUS_H_
