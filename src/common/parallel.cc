#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

#include "common/cancel.h"
#include "common/metrics.h"

namespace mesa {

namespace {

thread_local bool t_in_worker = false;

size_t DefaultNumThreads() {
  if (const char* env = std::getenv("MESA_NUM_THREADS")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && v >= 1) return static_cast<size_t>(v);
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

std::mutex g_pool_mu;
std::shared_ptr<ThreadPool> g_pool;  // guarded by g_pool_mu

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t workers = num_threads == 0 ? 0 : num_threads - 1;
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  // Workers drain the queue before exiting, so every Run still in flight
  // completes (its helpers never block — they only pull a chunk counter).
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::InWorker() { return t_in_worker; }

void ThreadPool::WorkerLoop() {
  t_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to do
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::Run(size_t num_tasks,
                     const std::function<void(size_t)>& task) {
  if (num_tasks == 0) return;

  // Serial lanes: no workers, or we *are* a worker (nested call) — running
  // inline avoids queuing behind ourselves.
  if (workers_.empty() || t_in_worker || num_tasks == 1) {
    for (size_t i = 0; i < num_tasks; ++i) task(i);
    return;
  }

  // Per-call completion state. Heap-shared because a queued helper may be
  // dequeued (and probe `next`) after every task has already finished and
  // the caller has moved on; `task` itself is only dereferenced for indices
  // below num_tasks, all of which complete before the caller returns.
  struct CallState {
    std::atomic<size_t> next{0};
    std::atomic<size_t> remaining;
    std::mutex mu;
    std::condition_variable done;
    std::vector<std::exception_ptr> errors;
  };
  auto state = std::make_shared<CallState>();
  state->remaining.store(num_tasks, std::memory_order_relaxed);
  state->errors.assign(num_tasks, nullptr);

  // Helpers inherit the caller's span path so spans opened inside the
  // task nest under the caller's trace no matter which thread runs them
  // (span paths stay invariant to pool size; see common/metrics.h). The
  // caller's own drain() below re-installs its current path, a no-op.
  const std::string trace_path = metrics::CurrentPath();
  const std::string trace_id = metrics::CurrentTraceId();
  // The caller's cancel token rides along the same way: a checkpoint hit
  // inside a pool worker unwinds that task, and the stored exception is
  // rethrown to the caller below (serial lanes above inherit the caller's
  // thread-local token directly).
  const std::shared_ptr<CancelToken> cancel_token = CurrentCancelToken();
  const std::function<void(size_t)>* task_ptr = &task;
  auto drain = [state, task_ptr, num_tasks, trace_path, trace_id,
                cancel_token] {
    metrics::PathGuard trace_guard(trace_path);
    metrics::TraceIdGuard trace_id_guard(trace_id);
    CancelScope cancel_scope(cancel_token);
    for (;;) {
      const size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= num_tasks) return;
      try {
        (*task_ptr)(i);
      } catch (...) {
        state->errors[i] = std::current_exception();
      }
      if (state->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(state->mu);
        state->done.notify_all();
      }
    }
  };

  const size_t helpers = std::min(workers_.size(), num_tasks - 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < helpers; ++i) queue_.emplace_back(drain);
  }
  if (helpers == 1) {
    cv_.notify_one();
  } else {
    cv_.notify_all();
  }

  drain();  // the caller participates

  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->done.wait(lock, [&] {
      return state->remaining.load(std::memory_order_acquire) == 0;
    });
  }
  for (const std::exception_ptr& e : state->errors) {
    if (e) std::rethrow_exception(e);
  }
}

std::shared_ptr<ThreadPool> GlobalThreadPool() {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (!g_pool) g_pool = std::make_shared<ThreadPool>(DefaultNumThreads());
  return g_pool;
}

void SetNumThreads(size_t num_threads) {
  auto pool = std::make_shared<ThreadPool>(std::max<size_t>(1, num_threads));
  std::lock_guard<std::mutex> lock(g_pool_mu);
  g_pool = std::move(pool);
}

size_t NumThreads() { return GlobalThreadPool()->num_threads(); }

namespace {
std::atomic<bool> g_data_plane_parallel{true};
}  // namespace

void SetDataPlaneParallel(bool enabled) {
  g_data_plane_parallel.store(enabled, std::memory_order_relaxed);
}

bool DataPlaneParallel() {
  return g_data_plane_parallel.load(std::memory_order_relaxed);
}

void ParallelForChunks(size_t begin, size_t end,
                       const std::function<void(size_t, size_t)>& body,
                       size_t max_threads) {
  if (end <= begin) return;
  const size_t range = end - begin;
  auto pool = GlobalThreadPool();
  size_t lanes = pool->num_threads();
  if (max_threads > 0) lanes = std::min(lanes, max_threads);
  const size_t chunks = std::min(range, std::max<size_t>(1, lanes));
  const size_t base = range / chunks;
  const size_t extra = range % chunks;  // first `extra` chunks get +1
  pool->Run(chunks, [&](size_t c) {
    const size_t lo = begin + c * base + std::min(c, extra);
    const size_t hi = lo + base + (c < extra ? 1 : 0);
    body(lo, hi);
  });
}

void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& body, size_t max_threads) {
  ParallelForChunks(
      begin, end,
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) body(i);
      },
      max_threads);
}

}  // namespace mesa
