#ifndef MESA_COMMON_CANCEL_H_
#define MESA_COMMON_CANCEL_H_

/// Request-level deadlines and cooperative cancellation.
///
/// A `CancelToken` carries an absolute steady-clock deadline and an
/// explicit cancel flag. The serving layer creates one per request
/// (`deadline_ms` on the wire, or the daemon's default), installs it
/// thread-locally with a `CancelScope`, and the thread pool carries it
/// into workers next to span paths and trace IDs — so every layer of the
/// explain pipeline observes the same token without plumbing a parameter
/// through dozens of signatures.
///
/// Pipeline code calls `CancelCheckpoint()` at natural unwind points
/// (morsel boundaries, per-candidate extraction, per-CMI-evaluation,
/// permutation batches). A checkpoint either returns — having changed
/// nothing — or throws `CancelledError`, which the `Mesa` public entry
/// points catch and convert to a `kCancelled` / `kDeadlineExceeded`
/// Status. Because a checkpoint can only abort-or-continue, a request
/// that *completes* is byte-identical to one that ran with no token at
/// all, at any thread count: the determinism contract of
/// docs/robustness.md is untouched.
///
/// Cache safety: every cache on the explain path (QueryAnalysis memos,
/// the sufficient-statistics cache, the discretizer memo) inserts only
/// *completed* values, computed outside the cache lock. Checkpoints are
/// never placed while a cache mutex is held, so an unwinding request
/// simply doesn't insert — the caches stay valid for the next request.
///
/// Thread-safety: tokens are freely shared across threads; all state is
/// atomic. The thread-local current-token accessors are per-thread.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"

namespace mesa {

/// Monotonic wall time in nanoseconds (steady clock; comparable across
/// threads within the process). Deadlines are absolute values of this
/// clock — 0 means "no deadline".
uint64_t CancelClockNowNs();

/// Shared cancellation state of one request. Create via std::make_shared
/// (the serving layer keeps one reference in its in-flight registry so a
/// drain can cancel requests it did not start).
class CancelToken {
 public:
  CancelToken() = default;

  /// Token that expires `timeout_ms` from now (0 = no deadline).
  static std::shared_ptr<CancelToken> WithTimeoutMs(uint64_t timeout_ms);

  /// Explicit cancel: every subsequent Check() fails with kCancelled.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Absolute steady-clock deadline in ns; 0 = none.
  uint64_t deadline_ns() const {
    return deadline_ns_.load(std::memory_order_relaxed);
  }
  void set_deadline_ns(uint64_t deadline_ns) {
    deadline_ns_.store(deadline_ns, std::memory_order_relaxed);
  }

  /// Moves the deadline *earlier* only (a drain must never extend a
  /// request's budget). A token with no deadline adopts the new one.
  void TightenDeadlineNs(uint64_t deadline_ns);

  /// OK while live; Cancelled after Cancel(); DeadlineExceeded once the
  /// deadline has passed. Explicit cancel wins over an expired deadline.
  Status Check() const;

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<uint64_t> deadline_ns_{0};
};

/// The calling thread's current token (nullptr outside any request).
/// Propagated into pool workers by ThreadPool::Run, like span paths.
const std::shared_ptr<CancelToken>& CurrentCancelToken();

/// Installs `token` as this thread's current token for a scope.
class CancelScope {
 public:
  explicit CancelScope(std::shared_ptr<CancelToken> token);
  ~CancelScope();
  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

 private:
  std::shared_ptr<CancelToken> saved_;
};

/// Thrown by CancelCheckpoint(); caught at the Mesa public boundary
/// (core/mesa.cc) and converted back to its Status. Internal to the
/// library — it must never escape a public entry point.
class CancelledError : public std::exception {
 public:
  explicit CancelledError(Status status) : status_(std::move(status)) {}
  const Status& status() const { return status_; }
  const char* what() const noexcept override { return "mesa::CancelledError"; }

 private:
  Status status_;
};

/// Cooperative cancellation point. No token installed: a thread-local
/// pointer test, nothing else. Token installed and live: one or two
/// relaxed atomic loads plus (when a deadline is set) a clock read.
/// Token cancelled or expired: throws CancelledError carrying the
/// kCancelled / kDeadlineExceeded status.
///
/// Every 1024th *checked* call is timed and recorded into the
/// "cancel/check_ns" distribution so the snapshot carries the
/// checkpoint-overhead evidence (docs/observability.md).
void CancelCheckpoint();

/// Non-throwing form for call sites that already speak Status.
Status CancelCheckStatus();

}  // namespace mesa

#endif  // MESA_COMMON_CANCEL_H_
