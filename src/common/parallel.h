#ifndef MESA_COMMON_PARALLEL_H_
#define MESA_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mesa {

/// A fixed-size pool of worker threads shared by every parallelized hot
/// path (permutation CI test, QueryAnalysis::Prepare, MCIMR scoring).
///
/// Determinism contract: every parallel helper in this header produces
/// results that are byte-identical to a serial execution, at any thread
/// count. The ingredients:
///   * work is split into chunks whose *boundaries* never depend on which
///     thread runs them, and per-index work is independent (callers must
///     not carry state across indices — derive per-index RNGs with
///     MixSeed(seed, index) instead of sharing one generator);
///   * ParallelMapReduce chunk boundaries depend only on (begin, end,
///     grain), never on the thread count, and partials are reduced in
///     chunk order — so even non-associative (floating-point) reductions
///     are thread-count-invariant;
///   * exceptions are rethrown from the lowest-index failing chunk.
///
/// Scheduling is dynamic (threads pull chunk indices from a shared
/// counter), which is safe because only the chunk *contents* matter.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` total lanes of concurrency: the
  /// calling thread participates in every Run, so `num_threads - 1` worker
  /// threads are spawned. `num_threads == 1` means fully serial.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency (worker threads + the participating caller).
  size_t num_threads() const { return workers_.size() + 1; }

  /// Runs task(0) ... task(num_tasks - 1), distributing them over the pool
  /// plus the calling thread, and returns when all have finished. Safe to
  /// call from multiple external threads at once (each call has its own
  /// completion state). Called from inside a pool worker, it degrades to a
  /// serial inline loop — nested parallelism never deadlocks.
  /// The first exception (lowest task index) is rethrown in the caller.
  void Run(size_t num_tasks, const std::function<void(size_t)>& task);

  /// True when the current thread is one of this process's pool workers.
  static bool InWorker();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// The process-wide pool, created on first use. Size: MESA_NUM_THREADS if
/// set (clamped to >= 1), else std::thread::hardware_concurrency().
std::shared_ptr<ThreadPool> GlobalThreadPool();

/// Replaces the global pool with one of `num_threads` lanes (>= 1).
/// In-flight parallel calls keep the old pool alive until they finish, so
/// resizing is safe at any time.
void SetNumThreads(size_t num_threads);

/// Lane count of the current global pool.
size_t NumThreads();

/// Process-wide switch for the morsel-driven data-plane operators
/// (group-by, hash join, KG extraction, TakeRows). When off they run
/// their single-threaded reference loops regardless of the pool size.
/// Outputs are bit-identical either way — the parallel paths preserve
/// the serial accumulation order by construction — so this only exists
/// to time honest serial baselines (bench A/Bs) and to pin the
/// serial-vs-parallel equivalence in tests. Defaults to on.
void SetDataPlaneParallel(bool enabled);
bool DataPlaneParallel();

/// Parallel loop: body(i) for i in [begin, end). Per-index work must be
/// independent; chunk boundaries may vary with the thread count, so any
/// cross-index accumulation belongs in ParallelMapReduce instead.
/// `max_threads` (0 = pool size) caps the concurrency of this one call.
void ParallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)>& body,
                 size_t max_threads = 0);

/// Parallel loop over contiguous chunks: body(lo, hi) with
/// begin <= lo < hi <= end. Lets the body hoist per-chunk scratch buffers,
/// provided each index's result stays independent of the chunking.
void ParallelForChunks(size_t begin, size_t end,
                       const std::function<void(size_t, size_t)>& body,
                       size_t max_threads = 0);

/// Deterministic map-reduce: reduce(init, map(begin), map(begin+1), ...)
/// with partials formed per chunk and combined in chunk order. Chunk
/// boundaries depend only on (begin, end, grain) — never on the thread
/// count — so results are bit-identical at 1 or N threads even for
/// floating-point reductions. grain = 0 picks a default of
/// max(1, range / 64) indices per chunk.
template <typename T, typename MapFn, typename ReduceFn>
T ParallelMapReduce(size_t begin, size_t end, T init, const MapFn& map,
                    const ReduceFn& reduce, size_t grain = 0,
                    size_t max_threads = 0) {
  if (end <= begin) return init;
  const size_t range = end - begin;
  if (grain == 0) grain = std::max<size_t>(1, range / 64);
  const size_t num_chunks = (range + grain - 1) / grain;
  std::vector<T> partials(num_chunks, init);
  ParallelFor(
      0, num_chunks,
      [&](size_t c) {
        const size_t lo = begin + c * grain;
        const size_t hi = std::min(end, lo + grain);
        T acc = init;
        for (size_t i = lo; i < hi; ++i) acc = reduce(acc, map(i));
        partials[c] = acc;
      },
      max_threads);
  T out = init;
  for (const T& p : partials) out = reduce(out, p);
  return out;
}

}  // namespace mesa

#endif  // MESA_COMMON_PARALLEL_H_
