#ifndef MESA_COMMON_METRICS_H_
#define MESA_COMMON_METRICS_H_

/// Low-overhead metrics registry: named atomic counters, value
/// distributions (count/sum/min/max and approximate p50/p99 from a
/// log-scale histogram), and RAII scoped-span timers that nest through a
/// thread-local trace path (e.g. "mcimr/round/score_candidate/cmi").
///
/// Use the macros, not the raw API, at instrumentation sites:
///
///   MESA_COUNT("info/cmi_evals");            // += 1
///   MESA_COUNT_N("kg/values_linked", n);     // += n
///   MESA_RECORD("qa/candidates", count);     // value distribution
///   MESA_SPAN("cmi");                        // times this scope (ns)
///
/// Each macro caches its registry handle in a function-local static, so
/// the name is hashed once per call site, and a counter bump is a single
/// relaxed atomic add. Configure with the CMake option `MESA_METRICS`
/// (default ON): when OFF every macro compiles to nothing. The registry
/// API itself (snapshot/reset/JSON) is always compiled so callers like
/// `mesa_cli --metrics` work in either build — the snapshot is simply
/// empty when instrumentation is compiled out. A runtime switch
/// (`SetEnabled(false)`) additionally turns collection into cheap
/// early-outs without recompiling, which is how the benches measure the
/// enabled-vs-disabled overhead.
///
/// Thread-safety: everything here is safe to call concurrently. Spans
/// track their path per thread; `ThreadPool::Run` installs the caller's
/// span path in its workers (via `PathGuard`), so span paths are
/// invariant to the pool size. See docs/observability.md.

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#ifndef MESA_METRICS_ENABLED
#define MESA_METRICS_ENABLED 1
#endif

namespace mesa {
namespace metrics {

/// Monotonic event counter.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Streaming distribution of double values. Exact count/sum/min/max;
/// p50/p99 are estimated from a log-scale histogram (4 buckets per
/// octave, so quantiles carry <= ~9% relative error for values > 1;
/// values <= 1 share one underflow bucket). Span timers record
/// nanoseconds, which the histogram resolves from 1ns up to ~2^64ns.
class Distribution {
 public:
  // 4 buckets per octave covers [1, 2^64) in 252 buckets + underflow.
  static constexpr size_t kBuckets = 253;

  void Record(double v);

  struct Stats {
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
  };
  /// A consistent-enough snapshot for reporting (individual fields are
  /// loaded atomically; concurrent writers may land between loads).
  Stats GetStats() const;

  void Reset();

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
  std::atomic<uint64_t> buckets_[kBuckets] = {};
};

/// Whether collection is active. Macros early-out when false; the
/// registry itself stays readable either way.
bool Enabled();
void SetEnabled(bool enabled);

/// Finds or creates a metric. Returned references live for the process
/// (Reset zeroes values but never invalidates handles), so call sites
/// may cache them in static storage.
Counter& GetCounter(std::string_view name);
Distribution& GetDistribution(std::string_view name);

/// Current value of a counter, or 0 if it has never been touched (the
/// lookup does not create it). Handy for benches and tests.
uint64_t CounterValue(std::string_view name);

/// One completed traced request (mesa_serve gives every request a unique
/// trace ID; see docs/serving.md). Span distributions aggregate by path —
/// bounded cardinality — so per-request identity lives here instead: a
/// bounded ring of the most recent requests, included in the snapshot.
struct TraceEvent {
  std::string id;        ///< unique per request, e.g. "t-17-a3f9".
  std::string name;      ///< root span path of the request, e.g. "serve/explain".
  bool ok = true;        ///< whether the request produced a success reply.
  uint64_t duration_ns = 0;
};

/// Appends to the trace ring (thread-safe; oldest events drop once the
/// ring holds kTraceLogCapacity = 4096). No-op when collection is off.
void RecordTrace(TraceEvent event);

/// Copy of the ring, oldest first.
std::vector<TraceEvent> TraceEvents();

/// The calling thread's current trace ID ("" outside any traced request).
/// Propagated into pool workers the same way span paths are, so work done
/// on behalf of a request carries its ID on any thread.
const std::string& CurrentTraceId();

/// Installs `id` as this thread's trace ID for a scope.
class TraceIdGuard {
 public:
  explicit TraceIdGuard(const std::string& id);
  ~TraceIdGuard();
  TraceIdGuard(const TraceIdGuard&) = delete;
  TraceIdGuard& operator=(const TraceIdGuard&) = delete;

 private:
  std::string saved_;
};

/// Point-in-time copy of every metric, names sorted.
struct Snapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, Distribution::Stats>> distributions;
  std::vector<TraceEvent> traces;
};
Snapshot TakeSnapshot();

/// Zeroes every counter and distribution and clears the trace ring
/// (handles stay valid).
void ResetAll();

/// {"counters":{name:value,...},
///  "distributions":{name:{"count":..,"sum":..,"min":..,"max":..,
///                         "p50":..,"p99":..},...},
///  "traces":[{"id":..,"name":..,"ok":..,"ns":..},...]}
/// Distribution values for spans are nanoseconds.
std::string ToJson(const Snapshot& snapshot);
std::string SnapshotJson();  // ToJson(TakeSnapshot())

/// The calling thread's current span path ("" outside any span).
const std::string& CurrentPath();

/// Replaces this thread's span path for a scope. The thread pool uses
/// this to carry the submitting thread's path into workers so that spans
/// opened inside parallel loops nest under the caller's span no matter
/// which thread runs them.
class PathGuard {
 public:
  explicit PathGuard(const std::string& path);
  ~PathGuard();
  PathGuard(const PathGuard&) = delete;
  PathGuard& operator=(const PathGuard&) = delete;

 private:
  std::string saved_;
};

/// RAII span timer: appends "/name" to the thread's trace path on entry
/// and records the elapsed nanoseconds into the distribution named by
/// the full path on exit. Use via MESA_SPAN.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool active_ = false;
  size_t saved_length_ = 0;
  uint64_t start_ns_ = 0;
};

}  // namespace metrics
}  // namespace mesa

#if MESA_METRICS_ENABLED

#define MESA_COUNT(name) MESA_COUNT_N(name, 1)

#define MESA_COUNT_N(name, n)                                         \
  do {                                                                \
    if (::mesa::metrics::Enabled()) {                                 \
      static ::mesa::metrics::Counter& mesa_metrics_counter =         \
          ::mesa::metrics::GetCounter(name);                          \
      mesa_metrics_counter.Add(static_cast<uint64_t>(n));             \
    }                                                                 \
  } while (0)

#define MESA_RECORD(name, value)                                      \
  do {                                                                \
    if (::mesa::metrics::Enabled()) {                                 \
      static ::mesa::metrics::Distribution& mesa_metrics_dist =       \
          ::mesa::metrics::GetDistribution(name);                     \
      mesa_metrics_dist.Record(static_cast<double>(value));           \
    }                                                                 \
  } while (0)

#define MESA_METRICS_CONCAT_IMPL(a, b) a##b
#define MESA_METRICS_CONCAT(a, b) MESA_METRICS_CONCAT_IMPL(a, b)
#define MESA_SPAN(name)                              \
  ::mesa::metrics::ScopedSpan MESA_METRICS_CONCAT(   \
      mesa_metrics_span_, __LINE__)(name)

#else  // !MESA_METRICS_ENABLED

#define MESA_COUNT(name) \
  do {                   \
  } while (0)
#define MESA_COUNT_N(name, n) \
  do {                        \
    (void)(n);                \
  } while (0)
#define MESA_RECORD(name, value) \
  do {                           \
    (void)(value);               \
  } while (0)
#define MESA_SPAN(name) \
  do {                  \
  } while (0)

#endif  // MESA_METRICS_ENABLED

#endif  // MESA_COMMON_METRICS_H_
