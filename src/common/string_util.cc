#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace mesa {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  s = StripWhitespace(s);
  if (s.empty()) return false;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  s = StripWhitespace(s);
  if (s.empty()) return false;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE || end != buf.c_str() + buf.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

std::string NormalizeEntityName(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool pending_sep = false;
  for (char raw : s) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      if (pending_sep && !out.empty()) out += '_';
      pending_sep = false;
      out += static_cast<char>(std::tolower(c));
    } else {
      pending_sep = true;
    }
  }
  return out;
}

size_t EditDistance(std::string_view a, std::string_view b) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;
  std::vector<size_t> prev(m + 1);
  std::vector<size_t> cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

}  // namespace mesa
