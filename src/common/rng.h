#ifndef MESA_COMMON_RNG_H_
#define MESA_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mesa {

/// Derives an independent stream seed from a base seed and a task index
/// (SplitMix64 finalizer). The parallel hot paths give every unit of work
/// — e.g. each permutation of the CI test — its own Rng seeded with
/// MixSeed(options.seed, index), so results never depend on how work is
/// split across threads.
uint64_t MixSeed(uint64_t seed, uint64_t index);

/// Deterministic, seedable pseudo-random number generator
/// (xoshiro256**). Used throughout the synthetic data generators and the
/// permutation-based independence tests so every experiment is exactly
/// reproducible across platforms — std::mt19937 distributions are not
/// guaranteed to produce identical streams across standard libraries.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Standard normal via Box-Muller.
  double NextGaussian();

  /// Gaussian with the given mean / standard deviation.
  double NextGaussian(double mean, double stddev);

  /// Bernoulli draw with success probability p.
  bool NextBernoulli(double p);

  /// Exponential with rate lambda.
  double NextExponential(double lambda);

  /// Draws an index in [0, weights.size()) proportionally to weights.
  /// Requires a non-empty vector with a positive sum.
  size_t NextWeighted(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of the index range [0, n).
  std::vector<size_t> Permutation(size_t n);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace mesa

#endif  // MESA_COMMON_RNG_H_
