#ifndef MESA_COMMON_RESULT_H_
#define MESA_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/logging.h"
#include "common/status.h"

namespace mesa {

/// Holds either a value of type T or a non-OK Status, in the spirit of
/// absl::StatusOr / arrow::Result. Accessing the value of an errored Result
/// is a programming error (checked by assert in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure). Building a
  /// Result from an OK Status would produce a valueless Result, so it is a
  /// programming error in every build mode — not just under assert.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      ::mesa::internal::FatalError(
          __FILE__, __LINE__, "Result<T> must not be built from an OK Status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns the error status (OK if this result holds a value).
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the held value, or `fallback` on error.
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> repr_;
};

/// Evaluates `rexpr` (a Result<T>), returning its status on error; otherwise
/// binds the value to `lhs`.
#define MESA_ASSIGN_OR_RETURN(lhs, rexpr)                   \
  MESA_ASSIGN_OR_RETURN_IMPL_(                              \
      MESA_CONCAT_(_mesa_result_, __LINE__), lhs, rexpr)

#define MESA_CONCAT_INNER_(a, b) a##b
#define MESA_CONCAT_(a, b) MESA_CONCAT_INNER_(a, b)
#define MESA_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

}  // namespace mesa

#endif  // MESA_COMMON_RESULT_H_
