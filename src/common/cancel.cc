#include "common/cancel.h"

#include <chrono>

#include "common/metrics.h"

namespace mesa {

namespace {

thread_local std::shared_ptr<CancelToken> t_current_token;

// Sampling stride of the checkpoint-overhead distribution: every Nth
// checked call is timed. Power of two so the test is a mask.
constexpr uint64_t kOverheadSampleStride = 1024;
thread_local uint64_t t_check_count = 0;

}  // namespace

uint64_t CancelClockNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::shared_ptr<CancelToken> CancelToken::WithTimeoutMs(uint64_t timeout_ms) {
  auto token = std::make_shared<CancelToken>();
  if (timeout_ms > 0) {
    token->set_deadline_ns(CancelClockNowNs() + timeout_ms * 1000000ULL);
  }
  return token;
}

void CancelToken::TightenDeadlineNs(uint64_t deadline_ns) {
  if (deadline_ns == 0) return;
  uint64_t observed = deadline_ns_.load(std::memory_order_relaxed);
  while (observed == 0 || deadline_ns < observed) {
    if (deadline_ns_.compare_exchange_weak(observed, deadline_ns,
                                           std::memory_order_relaxed)) {
      return;
    }
  }
}

Status CancelToken::Check() const {
  if (cancelled_.load(std::memory_order_relaxed)) {
    return Status::Cancelled("request cancelled");
  }
  uint64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  if (deadline != 0 && CancelClockNowNs() >= deadline) {
    return Status::DeadlineExceeded("request deadline exceeded");
  }
  return Status::OK();
}

const std::shared_ptr<CancelToken>& CurrentCancelToken() {
  return t_current_token;
}

CancelScope::CancelScope(std::shared_ptr<CancelToken> token)
    : saved_(std::move(t_current_token)) {
  t_current_token = std::move(token);
}

CancelScope::~CancelScope() { t_current_token = std::move(saved_); }

Status CancelCheckStatus() {
  const std::shared_ptr<CancelToken>& token = t_current_token;
  if (token == nullptr) return Status::OK();
  // Sampled overhead readout: time every Nth check end to end. The
  // sample decision itself is one thread-local increment + mask.
  if (((++t_check_count) & (kOverheadSampleStride - 1)) == 0) {
    uint64_t t0 = CancelClockNowNs();
    Status st = token->Check();
    uint64_t t1 = CancelClockNowNs();
    MESA_RECORD("cancel/check_ns", t1 - t0);
    return st;
  }
  return token->Check();
}

void CancelCheckpoint() {
  Status st = CancelCheckStatus();
  if (!st.ok()) throw CancelledError(std::move(st));
}

}  // namespace mesa
