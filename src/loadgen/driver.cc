#include "loadgen/driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include "common/retry.h"
#include "loadgen/schedule.h"
#include "serve/json.h"

namespace mesa {
namespace loadgen {
namespace {

using Clock = std::chrono::steady_clock;

uint64_t Combine(uint64_t h, uint64_t v) {
  // FNV-style fold of already-mixed 64-bit values; order-sensitive.
  return (h ^ v) * 0x100000001b3ULL;
}

uint64_t HashReplyFields(size_t query_index, const LatencyRecord& record) {
  std::string key = std::to_string(query_index);
  key += record.ok ? "|ok|" : "|err|";
  key += record.code;
  key += '|';
  key += record.report;
  key += '|';
  key += record.error;
  return StableHash64(key);
}

/// Parses one reply line into the record's outcome fields. An
/// unparseable reply counts as a transport-grade error — the server
/// promises line-framed JSON.
void FillFromReply(const std::string& reply_line, LatencyRecord* record) {
  Result<serve::JsonValue> reply = serve::JsonValue::Parse(reply_line);
  if (!reply.ok() || !reply->is_object()) {
    record->ok = false;
    record->code = "bad_reply";
    record->error = "unparseable reply line";
    return;
  }
  record->ok = reply->GetBool("ok");
  record->code = reply->GetString("code");
  record->report = reply->GetString("report");
  record->error = reply->GetString("error");
}

struct WorkerState {
  std::unique_ptr<RequestTarget> target;
  WorkerLog log;
};

}  // namespace

Result<std::unique_ptr<SocketTarget>> SocketTarget::Connect(
    uint16_t port, const std::string& host,
    serve::ClientOptions client_options) {
  MESA_ASSIGN_OR_RETURN(std::unique_ptr<serve::Client> client,
                        serve::Client::Connect(port, host, client_options));
  return std::unique_ptr<SocketTarget>(new SocketTarget(std::move(client)));
}

Result<RunResult> RunWorkload(const std::vector<WorkloadQuery>& queries,
                              const TargetFactory& factory,
                              const DriverOptions& options) {
  if (queries.empty()) {
    return Status::InvalidArgument("workload has no queries");
  }
  if (options.workers == 0) {
    return Status::InvalidArgument("driver needs at least one worker");
  }

  // Request lines are serialized once; workers only read them.
  std::vector<std::string> request_lines;
  request_lines.reserve(queries.size());
  for (const WorkloadQuery& query : queries) {
    request_lines.push_back(query.RequestLine(options.deadline_ms));
  }

  const bool open_loop = options.mode == LoadMode::kOpen;
  const std::vector<uint64_t> arrivals =
      open_loop ? OpenLoopArrivalsNs({options.seed, options.target_qps,
                                      options.total_requests})
                : std::vector<uint64_t>{};
  if (open_loop && arrivals.empty()) {
    return Status::InvalidArgument(
        "open loop needs total_requests > 0 and target_qps > 0");
  }

  // Targets up front: a refused connection fails the run before any
  // load is applied, not halfway through.
  std::vector<WorkerState> workers(options.workers);
  for (size_t w = 0; w < options.workers; ++w) {
    MESA_ASSIGN_OR_RETURN(workers[w].target, factory(w));
  }

  RunResult result;

  // The request fingerprint is a pure function of the schedule: it can
  // (and must) be computed without running anything.
  {
    uint64_t fp = 0xcbf29ce484222325ULL;
    if (open_loop) {
      for (size_t i = 0; i < options.total_requests; ++i) {
        size_t qi = QueryIndexFor(options.seed, 0, i, queries.size());
        fp = Combine(fp, StableHash64(request_lines[qi]));
      }
    } else {
      for (size_t w = 0; w < options.workers; ++w) {
        for (size_t r = 0; r < options.requests_per_worker; ++r) {
          size_t qi = QueryIndexFor(options.seed, w, r, queries.size());
          fp = Combine(fp, StableHash64(request_lines[qi]));
        }
      }
    }
    result.request_fingerprint = fp;
  }

  std::atomic<size_t> next_arrival{0};
  const Clock::time_point start = Clock::now();

  auto run_one = [&](WorkerState* state, size_t worker, size_t request,
                     size_t query_index) {
    LatencyRecord record;
    record.worker = worker;
    record.request = request;
    record.query_index = query_index;
    const Clock::time_point before = Clock::now();
    record.start_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(before - start)
            .count());
    Result<std::string> reply =
        state->target->Call(request_lines[query_index]);
    record.duration_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             before)
            .count());
    if (reply.ok()) {
      FillFromReply(*reply, &record);
    } else {
      record.ok = false;
      record.code = "transport";
      record.error = reply.status().ToString();
    }
    state->log.records.push_back(std::move(record));
  };

  auto closed_loop_worker = [&](size_t w) {
    WorkerState* state = &workers[w];
    for (size_t r = 0; r < options.requests_per_worker; ++r) {
      if (r > 0 && options.think_ns > 0) {
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(options.think_ns));
      }
      run_one(state, w, r, QueryIndexFor(options.seed, w, r, queries.size()));
    }
  };

  auto open_loop_worker = [&](size_t w) {
    WorkerState* state = &workers[w];
    for (;;) {
      size_t i = next_arrival.fetch_add(1, std::memory_order_relaxed);
      if (i >= arrivals.size()) break;
      std::this_thread::sleep_until(
          start + std::chrono::nanoseconds(arrivals[i]));
      run_one(state, w, i, QueryIndexFor(options.seed, 0, i, queries.size()));
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(options.workers);
  for (size_t w = 0; w < options.workers; ++w) {
    if (open_loop) {
      threads.emplace_back([&, w] { open_loop_worker(w); });
    } else {
      threads.emplace_back([&, w] { closed_loop_worker(w); });
    }
  }
  for (std::thread& t : threads) t.join();
  result.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  // Merge: records ordered by the schedule key — (worker, request) in
  // closed loop, global arrival index in open loop — so the reply
  // fingerprint does not depend on interleaving.
  std::vector<const LatencyRecord*> ordered;
  for (WorkerState& state : workers) {
    for (const LatencyRecord& record : state.log.records) {
      ordered.push_back(&record);
    }
  }
  std::sort(ordered.begin(), ordered.end(),
            [&](const LatencyRecord* a, const LatencyRecord* b) {
              if (open_loop) return a->request < b->request;
              return a->worker != b->worker ? a->worker < b->worker
                                            : a->request < b->request;
            });

  uint64_t reply_fp = 0xcbf29ce484222325ULL;
  for (const LatencyRecord* record : ordered) {
    reply_fp = Combine(reply_fp, HashReplyFields(record->query_index, *record));
    ++result.attempted;
    if (record->ok) {
      ++result.ok;
    } else if (record->code == "resource_exhausted") {
      ++result.shed;
    } else if (record->code == "deadline_exceeded") {
      ++result.deadline_exceeded;
    } else if (record->code == "cancelled") {
      ++result.cancelled;
    } else {
      ++result.errors;
    }
  }
  result.reply_fingerprint = reply_fp;

  result.logs.reserve(workers.size());
  for (WorkerState& state : workers) {
    if (!options.capture_replies) {
      for (LatencyRecord& record : state.log.records) {
        record.report.clear();
        record.error.clear();
      }
    }
    result.logs.push_back(std::move(state.log));
  }
  return result;
}

}  // namespace loadgen
}  // namespace mesa
