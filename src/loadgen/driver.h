#ifndef MESA_LOADGEN_DRIVER_H_
#define MESA_LOADGEN_DRIVER_H_

/// The load driver: fires a seeded workload at a live explain service
/// in closed-loop or open-loop mode and collects per-request latency
/// into lock-free per-worker logs (docs/performance.md §7).
///
/// The service is abstracted as a RequestTarget — one per worker — so
/// the same driver runs against an in-process serve::Router (fully
/// deterministic, the ctest mode) and against a real daemon socket via
/// serve::Client (the throughput mode). Request lines are identical in
/// both modes by construction (WorkloadQuery::RequestLine).

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "loadgen/latency.h"
#include "loadgen/workload.h"
#include "serve/client.h"
#include "serve/router.h"

namespace mesa {
namespace loadgen {

/// One worker's connection to the service under load.
class RequestTarget {
 public:
  virtual ~RequestTarget() = default;
  /// Sends one request line, returns the raw reply line. A !ok Status
  /// means the transport itself failed (protocol-level errors come back
  /// as ok=false reply lines instead).
  virtual Result<std::string> Call(const std::string& request_line) = 0;
};

/// In-process target: calls Router::Handle directly. Deterministic —
/// no sockets, no kernel scheduling in the reply path — which is what
/// the ctest load tests drive.
class RouterTarget : public RequestTarget {
 public:
  /// `router` must outlive the target; Handle is thread-safe.
  explicit RouterTarget(serve::Router* router) : router_(router) {}
  Result<std::string> Call(const std::string& request_line) override {
    return router_->Handle(request_line).reply_line;
  }

 private:
  serve::Router* router_;
};

/// Real-socket target: one serve::Client connection per worker.
class SocketTarget : public RequestTarget {
 public:
  static Result<std::unique_ptr<SocketTarget>> Connect(
      uint16_t port, const std::string& host = "127.0.0.1",
      serve::ClientOptions client_options = {});
  Result<std::string> Call(const std::string& request_line) override {
    return client_->CallRaw(request_line);
  }

 private:
  explicit SocketTarget(std::unique_ptr<serve::Client> client)
      : client_(std::move(client)) {}
  std::unique_ptr<serve::Client> client_;
};

/// Builds worker `w`'s target. Called once per worker before any load
/// is applied, so connection failures fail the run up front.
using TargetFactory =
    std::function<Result<std::unique_ptr<RequestTarget>>(size_t worker)>;

enum class LoadMode {
  kClosed,  ///< N workers, back-to-back requests, optional think time.
  kOpen,    ///< target QPS, seeded Poisson arrivals.
};

struct DriverOptions {
  LoadMode mode = LoadMode::kClosed;
  uint64_t seed = 20230707;
  size_t workers = 8;
  /// Closed loop: requests each worker issues.
  size_t requests_per_worker = 8;
  /// Closed loop: pause between a worker's requests.
  uint64_t think_ns = 0;
  /// Open loop: arrival rate and total request count.
  double target_qps = 100.0;
  size_t total_requests = 64;
  /// Keep reply report/error text in the records (the byte-identity
  /// tests need it; pure throughput runs can skip the copies).
  bool capture_replies = false;
  /// Per-request deadline attached to every explain request line
  /// (`deadline_ms` on the wire); 0 sends none — request lines are then
  /// byte-identical to pre-deadline harness versions.
  uint64_t deadline_ms = 0;
};

struct RunResult {
  std::vector<WorkerLog> logs;  ///< one per worker.
  double wall_seconds = 0.0;
  size_t attempted = 0;
  size_t ok = 0;
  size_t shed = 0;    ///< resource_exhausted replies (admission).
  size_t deadline_exceeded = 0;  ///< deadline_exceeded replies (cancel).
  size_t cancelled = 0;          ///< cancelled replies (explicit/drain).
  size_t errors = 0;  ///< other !ok replies + transport failures.
  /// Order-stable checksums (see docs/observability.md): the request
  /// fingerprint covers the request lines in schedule order and depends
  /// only on (workload, options) — two same-seed runs always match. The
  /// reply fingerprint additionally covers (ok, code, report, error) per
  /// reply; it is stable whenever the reply content is (i.e. no sheds).
  uint64_t request_fingerprint = 0;
  uint64_t reply_fingerprint = 0;
};

/// Runs the workload. Never blocks forever by construction: workers
/// issue a fixed number of requests, and the daemon's admission control
/// sheds rather than queues.
Result<RunResult> RunWorkload(const std::vector<WorkloadQuery>& queries,
                              const TargetFactory& factory,
                              const DriverOptions& options);

}  // namespace loadgen
}  // namespace mesa

#endif  // MESA_LOADGEN_DRIVER_H_
