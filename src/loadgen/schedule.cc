#include "loadgen/schedule.h"

#include "common/rng.h"

namespace mesa {
namespace loadgen {
namespace {

// Domain tags keep the schedule streams independent of the workload
// generator's (which also derives from the run seed).
constexpr uint64_t kIndexStream = 0x6c6f616423696478ULL;    // "load#idx"
constexpr uint64_t kArrivalStream = 0x6c6f616423617272ULL;  // "load#arr"

}  // namespace

size_t QueryIndexFor(uint64_t seed, size_t worker, size_t request,
                     size_t num_queries) {
  if (num_queries == 0) return 0;
  // Workers stay far below 2^24 and requests below 2^40; the shifted
  // worker id keeps every (worker, request) key distinct.
  uint64_t key = (static_cast<uint64_t>(worker) << 40) |
                 static_cast<uint64_t>(request);
  return static_cast<size_t>(MixSeed(MixSeed(seed, kIndexStream), key) %
                             num_queries);
}

std::vector<uint64_t> OpenLoopArrivalsNs(const OpenLoopOptions& options) {
  std::vector<uint64_t> arrivals;
  if (options.total_requests == 0 || !(options.target_qps > 0.0)) {
    return arrivals;
  }
  arrivals.reserve(options.total_requests);
  Rng rng(MixSeed(options.seed, kArrivalStream));
  double elapsed_seconds = 0.0;
  for (size_t i = 0; i < options.total_requests; ++i) {
    elapsed_seconds += rng.NextExponential(options.target_qps);
    arrivals.push_back(static_cast<uint64_t>(elapsed_seconds * 1e9));
  }
  return arrivals;
}

}  // namespace loadgen
}  // namespace mesa
