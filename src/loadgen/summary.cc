#include "loadgen/summary.h"

#include <cinttypes>
#include <cstdio>

#include "common/metrics.h"
#include "serve/json.h"

namespace mesa {
namespace loadgen {
namespace {

bool HasAnyPrefix(const std::string& name,
                  const std::vector<std::string>& prefixes) {
  for (const std::string& prefix : prefixes) {
    if (name.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

std::string HexFingerprint(uint64_t fp) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, fp);
  return buf;
}

}  // namespace

const std::vector<std::string>& DefaultCounterPrefixes() {
  static const std::vector<std::string>* prefixes =
      new std::vector<std::string>{"serve/", "info_cache/"};
  return *prefixes;
}

CounterMap ReadProcessCounters(const std::vector<std::string>& prefixes) {
  CounterMap counters;
  metrics::Snapshot snapshot = metrics::TakeSnapshot();
  for (const auto& [name, value] : snapshot.counters) {
    if (HasAnyPrefix(name, prefixes)) counters[name] = value;
  }
  return counters;
}

Result<CounterMap> ParseCountersJson(
    const std::string& metrics_json,
    const std::vector<std::string>& prefixes) {
  MESA_ASSIGN_OR_RETURN(serve::JsonValue snapshot,
                        serve::JsonValue::Parse(metrics_json));
  const serve::JsonValue* counters = snapshot.Find("counters");
  if (counters == nullptr || !counters->is_object()) {
    return Status::InvalidArgument(
        "metrics snapshot has no \"counters\" object");
  }
  CounterMap out;
  for (const auto& [name, value] : counters->members()) {
    if (!value.is_number() || !HasAnyPrefix(name, prefixes)) continue;
    out[name] = static_cast<uint64_t>(value.as_number());
  }
  return out;
}

CounterMap CounterDelta(const CounterMap& before, const CounterMap& after) {
  CounterMap delta;
  for (const auto& [name, value] : after) {
    auto it = before.find(name);
    uint64_t base = it == before.end() ? 0 : it->second;
    delta[name] = value >= base ? value - base : 0;
  }
  return delta;
}

WorkloadSummary Summarize(const DriverOptions& options,
                          const RunResult& result, size_t distinct_queries,
                          CounterMap counter_deltas) {
  WorkloadSummary summary;
  summary.mode = options.mode == LoadMode::kOpen ? "open" : "closed";
  summary.seed = options.seed;
  summary.workers = options.workers;
  summary.distinct_queries = distinct_queries;
  summary.attempted = result.attempted;
  summary.ok = result.ok;
  summary.shed = result.shed;
  summary.deadline_exceeded = result.deadline_exceeded;
  summary.cancelled = result.cancelled;
  summary.errors = result.errors;
  summary.shed_rate =
      result.attempted == 0
          ? 0.0
          : static_cast<double>(result.shed) /
                static_cast<double>(result.attempted);
  summary.deadline_ms = options.deadline_ms;
  summary.deadline_hit_rate =
      result.attempted == 0
          ? 0.0
          : static_cast<double>(result.deadline_exceeded) /
                static_cast<double>(result.attempted);
  summary.wall_seconds = result.wall_seconds;
  summary.qps = result.wall_seconds > 0.0
                    ? static_cast<double>(result.attempted) /
                          result.wall_seconds
                    : 0.0;
  std::vector<double> ok_latencies_ms;
  std::vector<double> unwind_ms;
  const double deadline_budget_ms = static_cast<double>(options.deadline_ms);
  for (const WorkerLog& log : result.logs) {
    for (const LatencyRecord& record : log.records) {
      if (record.ok) {
        ok_latencies_ms.push_back(static_cast<double>(record.duration_ns) /
                                  1e6);
      } else if (record.code == "deadline_exceeded" &&
                 deadline_budget_ms > 0.0) {
        // Client-side unwind latency: how far past the budget the
        // deadline_exceeded reply arrived.
        double over_ms =
            static_cast<double>(record.duration_ns) / 1e6 - deadline_budget_ms;
        unwind_ms.push_back(over_ms > 0.0 ? over_ms : 0.0);
      }
    }
  }
  summary.latency = ComputeLatencyStats(std::move(ok_latencies_ms));
  summary.unwind = ComputeLatencyStats(std::move(unwind_ms));
  summary.request_fingerprint = result.request_fingerprint;
  summary.reply_fingerprint = result.reply_fingerprint;
  summary.counter_deltas = std::move(counter_deltas);
  return summary;
}

std::string SummaryToText(const WorkloadSummary& summary) {
  char buf[256];
  std::string text;
  std::snprintf(buf, sizeof(buf),
                "workload: mode=%s seed=%" PRIu64
                " workers=%zu distinct_queries=%zu\n",
                summary.mode.c_str(), summary.seed, summary.workers,
                summary.distinct_queries);
  text += buf;
  std::snprintf(buf, sizeof(buf),
                "requests: attempted=%zu ok=%zu shed=%zu errors=%zu "
                "shed_rate=%.3f\n",
                summary.attempted, summary.ok, summary.shed, summary.errors,
                summary.shed_rate);
  text += buf;
  if (summary.deadline_ms > 0) {
    std::snprintf(buf, sizeof(buf),
                  "deadlines: deadline_ms=%" PRIu64
                  " deadline_exceeded=%zu cancelled=%zu hit_rate=%.3f\n",
                  summary.deadline_ms, summary.deadline_exceeded,
                  summary.cancelled, summary.deadline_hit_rate);
    text += buf;
    std::snprintf(buf, sizeof(buf),
                  "unwind ms (past-deadline, client view): p50=%.3f p95=%.3f "
                  "p99=%.3f mean=%.3f max=%.3f n=%zu\n",
                  summary.unwind.p50_ms, summary.unwind.p95_ms,
                  summary.unwind.p99_ms, summary.unwind.mean_ms,
                  summary.unwind.max_ms, summary.unwind.count);
    text += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "throughput: %.1f req/s over %.3f s (single-core container "
                "numbers are overhead readouts, not scaling claims)\n",
                summary.qps, summary.wall_seconds);
  text += buf;
  std::snprintf(buf, sizeof(buf),
                "latency ms (ok replies, nearest-rank): p50=%.3f p95=%.3f "
                "p99=%.3f mean=%.3f max=%.3f n=%zu\n",
                summary.latency.p50_ms, summary.latency.p95_ms,
                summary.latency.p99_ms, summary.latency.mean_ms,
                summary.latency.max_ms, summary.latency.count);
  text += buf;
  text += "fingerprints: requests=" + HexFingerprint(
              summary.request_fingerprint) +
          " replies=" + HexFingerprint(summary.reply_fingerprint) + "\n";
  if (summary.counter_deltas.empty()) {
    text += "counter deltas: (none — metrics off or no matching prefixes)\n";
  } else {
    text += "counter deltas:\n";
    for (const auto& [name, value] : summary.counter_deltas) {
      std::snprintf(buf, sizeof(buf), "  %-40s %" PRIu64 "\n", name.c_str(),
                    value);
      text += buf;
    }
  }
  return text;
}

std::string SummaryToJson(const WorkloadSummary& summary) {
  using serve::JsonValue;
  JsonValue root = JsonValue::Object();
  JsonValue workload = JsonValue::Object();
  workload.Set("mode", JsonValue::Str(summary.mode));
  workload.Set("seed", JsonValue::Number(static_cast<double>(summary.seed)));
  workload.Set("workers",
               JsonValue::Number(static_cast<double>(summary.workers)));
  workload.Set("distinct_queries", JsonValue::Number(static_cast<double>(
                                       summary.distinct_queries)));
  workload.Set("attempted",
               JsonValue::Number(static_cast<double>(summary.attempted)));
  workload.Set("ok", JsonValue::Number(static_cast<double>(summary.ok)));
  workload.Set("shed", JsonValue::Number(static_cast<double>(summary.shed)));
  workload.Set("deadline_exceeded", JsonValue::Number(static_cast<double>(
                                        summary.deadline_exceeded)));
  workload.Set("cancelled",
               JsonValue::Number(static_cast<double>(summary.cancelled)));
  workload.Set("errors",
               JsonValue::Number(static_cast<double>(summary.errors)));
  workload.Set("shed_rate", JsonValue::Number(summary.shed_rate));
  workload.Set("deadline_ms",
               JsonValue::Number(static_cast<double>(summary.deadline_ms)));
  workload.Set("deadline_hit_rate",
               JsonValue::Number(summary.deadline_hit_rate));
  workload.Set("wall_seconds", JsonValue::Number(summary.wall_seconds));
  workload.Set("qps", JsonValue::Number(summary.qps));
  JsonValue latency = JsonValue::Object();
  latency.Set("count",
              JsonValue::Number(static_cast<double>(summary.latency.count)));
  latency.Set("p50", JsonValue::Number(summary.latency.p50_ms));
  latency.Set("p95", JsonValue::Number(summary.latency.p95_ms));
  latency.Set("p99", JsonValue::Number(summary.latency.p99_ms));
  latency.Set("mean", JsonValue::Number(summary.latency.mean_ms));
  latency.Set("max", JsonValue::Number(summary.latency.max_ms));
  workload.Set("latency_ms", std::move(latency));
  if (summary.deadline_ms > 0) {
    JsonValue unwind = JsonValue::Object();
    unwind.Set("count",
               JsonValue::Number(static_cast<double>(summary.unwind.count)));
    unwind.Set("p50", JsonValue::Number(summary.unwind.p50_ms));
    unwind.Set("p95", JsonValue::Number(summary.unwind.p95_ms));
    unwind.Set("p99", JsonValue::Number(summary.unwind.p99_ms));
    unwind.Set("mean", JsonValue::Number(summary.unwind.mean_ms));
    unwind.Set("max", JsonValue::Number(summary.unwind.max_ms));
    workload.Set("unwind_ms", std::move(unwind));
  }
  workload.Set("request_fingerprint",
               JsonValue::Str(HexFingerprint(summary.request_fingerprint)));
  workload.Set("reply_fingerprint",
               JsonValue::Str(HexFingerprint(summary.reply_fingerprint)));
  JsonValue deltas = JsonValue::Object();
  for (const auto& [name, value] : summary.counter_deltas) {
    deltas.Set(name, JsonValue::Number(static_cast<double>(value)));
  }
  workload.Set("counter_deltas", std::move(deltas));
  root.Set("workload", std::move(workload));
  return root.Serialize();
}

Status WriteSummaryJsonFile(const WorkloadSummary& summary,
                            const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot write workload summary to " + path);
  }
  std::string json = SummaryToJson(summary);
  json += '\n';
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int closed = std::fclose(f);
  if (written != json.size() || closed != 0) {
    return Status::IOError("short write of workload summary to " + path);
  }
  return Status::OK();
}

}  // namespace loadgen
}  // namespace mesa
