#ifndef MESA_LOADGEN_WORKLOAD_H_
#define MESA_LOADGEN_WORKLOAD_H_

/// Seeded workload generation for the mesa_serve load harness
/// (docs/performance.md §7). A workload is a small pool of distinct
/// explain queries drawn deterministically from one or more resident
/// datasets — the same seed always yields the same pool, so a load run
/// is reproducible end to end and every reply can be checked against a
/// serial oracle computed once per distinct query.
///
/// Query shapes follow bench_usefulness_random_queries: exposure = an
/// extraction column, outcome = a numeric attribute, optional WHERE
/// over a frequent categorical value, optional subgroup refinement.

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "table/table.h"
#include "table/value.h"

namespace mesa {
namespace loadgen {

/// What the generator may draw from for one resident dataset.
struct WorkloadDataset {
  std::string name;  ///< the daemon-side dataset name ("covid").
  /// Candidate exposures (grouping attributes) — the extraction columns.
  std::vector<std::string> exposures;
  /// Candidate numeric outcomes.
  std::vector<std::string> outcomes;
  /// Candidate WHERE equalities: a categorical column and one of its
  /// frequent values.
  struct ContextChoice {
    std::string column;
    Value value;
  };
  std::vector<ContextChoice> contexts;
  /// Candidate subgroup refinement attributes (empty = never ask for
  /// subgroups on this dataset).
  std::vector<std::string> subgroup_attributes;
};

/// Inspects `table` and builds the draw pools: exposures come from
/// `extraction_columns`, outcomes are the double-typed columns not used
/// as exposures, contexts are string-column values covering at least
/// 10% of the rows (2..30 distinct values per column, as in the §5.1
/// usefulness bench).
WorkloadDataset MakeWorkloadDataset(
    std::string name, const Table& table,
    std::vector<std::string> extraction_columns,
    std::vector<std::string> subgroup_attributes = {});

/// One distinct query of the pool.
struct WorkloadQuery {
  std::string dataset;
  std::string sql;
  std::vector<std::string> subgroups;

  /// The exact wire request line serve::Client::Explain would send for
  /// this query (field order included), so in-process Router mode and
  /// real-socket mode drive byte-identical requests. `deadline_ms` > 0
  /// adds the request deadline field; 0 emits the same bytes as before
  /// deadlines existed, so seeded fingerprints are stable.
  std::string RequestLine(uint64_t deadline_ms = 0) const;
};

struct WorkloadOptions {
  uint64_t seed = 20230707;
  /// Size of the distinct-query pool the schedule draws indices from.
  size_t distinct_queries = 8;
  double where_probability = 0.5;
  double subgroup_probability = 0.25;
};

/// Deterministic: the same datasets + options always produce the same
/// query pool, element for element. Datasets are covered round-robin,
/// so every dataset appears in any pool at least as large as the
/// dataset list. Fails on an empty dataset list or a dataset with no
/// exposures or no outcomes.
Result<std::vector<WorkloadQuery>> GenerateWorkload(
    const std::vector<WorkloadDataset>& datasets,
    const WorkloadOptions& options);

}  // namespace loadgen
}  // namespace mesa

#endif  // MESA_LOADGEN_WORKLOAD_H_
