#ifndef MESA_LOADGEN_SUMMARY_H_
#define MESA_LOADGEN_SUMMARY_H_

/// Result reporting for the load driver: latency percentiles, rates,
/// counter deltas, and the machine-readable JSON summary the CI and
/// multi-core scaling runs publish (schema: docs/observability.md).

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "loadgen/driver.h"
#include "loadgen/latency.h"

namespace mesa {
namespace loadgen {

using CounterMap = std::map<std::string, uint64_t>;

/// Counter prefixes the harness reports by default: daemon protocol
/// traffic and the sufficient-statistics cache.
const std::vector<std::string>& DefaultCounterPrefixes();

/// Current values of every process-local metrics counter whose name
/// starts with one of `prefixes`. Empty under -DMESA_METRICS=OFF.
CounterMap ReadProcessCounters(const std::vector<std::string>& prefixes);

/// Same, but from a daemon's `metrics`-verb JSON snapshot — how the
/// harness reads counters when the service under load is a separate
/// process.
Result<CounterMap> ParseCountersJson(const std::string& metrics_json,
                                     const std::vector<std::string>& prefixes);

/// after - before, keyed by name; names missing from `before` count
/// from zero, names missing from `after` are dropped.
CounterMap CounterDelta(const CounterMap& before, const CounterMap& after);

struct WorkloadSummary {
  std::string mode;  ///< "closed" or "open".
  uint64_t seed = 0;
  size_t workers = 0;
  size_t distinct_queries = 0;
  size_t attempted = 0;
  size_t ok = 0;
  size_t shed = 0;
  size_t deadline_exceeded = 0;
  size_t cancelled = 0;
  size_t errors = 0;
  double shed_rate = 0.0;  ///< shed / attempted.
  /// The per-request deadline the run carried (0 = none).
  uint64_t deadline_ms = 0;
  /// deadline_exceeded / attempted — how often the budget fired.
  double deadline_hit_rate = 0.0;
  /// Cancellation-unwind latency over deadline_exceeded replies: how far
  /// past its deadline each reply arrived (client-side view; bounded by
  /// the checkpoint spacing plus transport). Empty when no deadlines hit.
  LatencyStats unwind;
  double wall_seconds = 0.0;
  double qps = 0.0;  ///< attempted / wall_seconds.
  /// Over successful replies only — service latency, not shed latency
  /// (sheds return in microseconds by design and would drag every
  /// percentile down).
  LatencyStats latency;
  uint64_t request_fingerprint = 0;
  uint64_t reply_fingerprint = 0;
  CounterMap counter_deltas;
};

/// Folds a run into the summary (counter deltas are the caller's —
/// process-local or daemon-side, depending on the target).
WorkloadSummary Summarize(const DriverOptions& options,
                          const RunResult& result, size_t distinct_queries,
                          CounterMap counter_deltas = {});

/// Human-readable multi-line rendering.
std::string SummaryToText(const WorkloadSummary& summary);

/// One JSON object (the docs/observability.md "workload summary"
/// schema). Fingerprints render as "0x..." strings: they are 64-bit
/// and must not round-trip through a double.
std::string SummaryToJson(const WorkloadSummary& summary);

/// Writes SummaryToJson + trailing newline to `path` (truncates).
Status WriteSummaryJsonFile(const WorkloadSummary& summary,
                            const std::string& path);

}  // namespace loadgen
}  // namespace mesa

#endif  // MESA_LOADGEN_SUMMARY_H_
