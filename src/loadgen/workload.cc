#include "loadgen/workload.h"

#include <set>
#include <utility>

#include "common/rng.h"
#include "query/group_by.h"
#include "query/query_spec.h"
#include "serve/json.h"

namespace mesa {
namespace loadgen {
namespace {

/// One draw from a dataset's pools. The rng is fully consumed-agnostic:
/// every draw path reads the same generators in the same order only as
/// far as it goes, and each (slot, attempt) pair gets a fresh stream,
/// so the result depends on nothing but the seed derivation.
WorkloadQuery DrawQuery(const WorkloadDataset& dataset, Rng& rng,
                        const WorkloadOptions& options) {
  QuerySpec spec;
  spec.table_name = dataset.name;
  spec.exposure = dataset.exposures[rng.NextBelow(dataset.exposures.size())];
  spec.outcome = dataset.outcomes[rng.NextBelow(dataset.outcomes.size())];
  if (!dataset.contexts.empty() &&
      rng.NextBernoulli(options.where_probability)) {
    const WorkloadDataset::ContextChoice& choice =
        dataset.contexts[rng.NextBelow(dataset.contexts.size())];
    if (choice.column != spec.exposure && choice.column != spec.outcome) {
      spec.context.Add({choice.column, CompareOp::kEq, choice.value, {}});
    }
  }

  WorkloadQuery query;
  query.dataset = dataset.name;
  query.sql = spec.ToSql();
  if (!dataset.subgroup_attributes.empty() &&
      rng.NextBernoulli(options.subgroup_probability)) {
    const std::string& column = dataset.subgroup_attributes[rng.NextBelow(
        dataset.subgroup_attributes.size())];
    if (column != spec.exposure) query.subgroups.push_back(column);
  }
  return query;
}

}  // namespace

WorkloadDataset MakeWorkloadDataset(
    std::string name, const Table& table,
    std::vector<std::string> extraction_columns,
    std::vector<std::string> subgroup_attributes) {
  WorkloadDataset dataset;
  dataset.name = std::move(name);
  dataset.exposures = std::move(extraction_columns);
  dataset.subgroup_attributes = std::move(subgroup_attributes);

  std::set<std::string> exposure_set(dataset.exposures.begin(),
                                     dataset.exposures.end());
  for (const Field& field : table.schema().fields()) {
    if (field.type == DataType::kDouble &&
        exposure_set.count(field.name) == 0) {
      dataset.outcomes.push_back(field.name);
    }
  }

  for (const Field& field : table.schema().fields()) {
    if (field.type != DataType::kString) continue;
    std::vector<Value> values;
    auto codes = EncodeGroups(table, field.name, &values);
    if (!codes.ok() || values.size() < 2 || values.size() > 30) continue;
    std::vector<size_t> counts(values.size(), 0);
    for (int32_t code : *codes) {
      if (code >= 0) ++counts[static_cast<size_t>(code)];
    }
    for (size_t v = 0; v < values.size(); ++v) {
      if (counts[v] * 10 >= table.num_rows()) {
        dataset.contexts.push_back({field.name, values[v]});
      }
    }
  }
  return dataset;
}

std::string WorkloadQuery::RequestLine(uint64_t deadline_ms) const {
  serve::JsonValue request = serve::JsonValue::Object();
  request.Set("verb", serve::JsonValue::Str("explain"));
  request.Set("dataset", serve::JsonValue::Str(dataset));
  request.Set("sql", serve::JsonValue::Str(sql));
  if (deadline_ms > 0) {
    request.Set("deadline_ms",
                serve::JsonValue::Number(static_cast<double>(deadline_ms)));
  }
  if (!subgroups.empty()) {
    serve::JsonValue columns = serve::JsonValue::Array();
    for (const std::string& column : subgroups) {
      columns.Append(serve::JsonValue::Str(column));
    }
    request.Set("subgroups", std::move(columns));
  }
  return request.Serialize();
}

Result<std::vector<WorkloadQuery>> GenerateWorkload(
    const std::vector<WorkloadDataset>& datasets,
    const WorkloadOptions& options) {
  if (datasets.empty()) {
    return Status::InvalidArgument("workload needs at least one dataset");
  }
  for (const WorkloadDataset& dataset : datasets) {
    if (dataset.exposures.empty() || dataset.outcomes.empty()) {
      return Status::InvalidArgument(
          "workload dataset '" + dataset.name +
          "' needs at least one exposure and one outcome");
    }
  }

  // Each slot gets up to 32 attempts to land a query the pool has not
  // seen yet; attempts derive fresh seeds, so dedup never perturbs the
  // stream of later slots. A still-duplicate query after the attempts
  // is kept (tiny pools over tiny datasets can exhaust the shape space).
  std::vector<WorkloadQuery> pool;
  pool.reserve(options.distinct_queries);
  std::set<std::string> seen;
  for (size_t slot = 0; slot < options.distinct_queries; ++slot) {
    const WorkloadDataset& dataset = datasets[slot % datasets.size()];
    WorkloadQuery query;
    for (uint64_t attempt = 0; attempt < 32; ++attempt) {
      Rng rng(MixSeed(options.seed, slot * 64 + attempt));
      query = DrawQuery(dataset, rng, options);
      if (seen.insert(query.RequestLine()).second) break;
    }
    pool.push_back(std::move(query));
  }
  return pool;
}

}  // namespace loadgen
}  // namespace mesa
