#ifndef MESA_LOADGEN_SCHEDULE_H_
#define MESA_LOADGEN_SCHEDULE_H_

/// Deterministic request scheduling for the load driver
/// (docs/performance.md §7).
///
/// Two schedules, matching the two classic load-driver disciplines:
///
///  - Closed loop: N workers issue requests back to back (optional
///    think time). Which query a worker issues is a pure function of
///    (seed, worker, request index), so the request content never
///    depends on timing.
///  - Open loop: requests arrive at a target rate regardless of how
///    fast replies come back — a Poisson process with seeded
///    exponential inter-arrivals, materialized up front as a vector of
///    absolute offsets so two runs with the same seed fire the same
///    schedule to the nanosecond.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mesa {
namespace loadgen {

/// The query-pool index request `request` of worker `worker` issues.
/// Closed loop passes its real worker id; open loop passes worker 0 and
/// the global arrival index, so the mapping is shared by both modes.
/// Pure and stable: same arguments, same answer, forever.
size_t QueryIndexFor(uint64_t seed, size_t worker, size_t request,
                     size_t num_queries);

struct OpenLoopOptions {
  uint64_t seed = 1;
  double target_qps = 100.0;
  size_t total_requests = 0;
};

/// Poisson arrivals: `total_requests` non-decreasing absolute offsets
/// (nanoseconds from run start) with exponential inter-arrival times of
/// rate `target_qps`, drawn from a seeded deterministic stream. Empty
/// when total_requests is 0 or target_qps is not positive.
std::vector<uint64_t> OpenLoopArrivalsNs(const OpenLoopOptions& options);

}  // namespace loadgen
}  // namespace mesa

#endif  // MESA_LOADGEN_SCHEDULE_H_
