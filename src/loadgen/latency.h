#ifndef MESA_LOADGEN_LATENCY_H_
#define MESA_LOADGEN_LATENCY_H_

/// Per-worker latency logs and exact percentile math for the load
/// driver (docs/performance.md §7). Each worker appends to its own log
/// — no shared state, no locks, no atomics on the hot path — and the
/// logs are merged only after every worker has joined.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mesa {
namespace loadgen {

/// One completed request, as observed by the worker that issued it.
struct LatencyRecord {
  size_t worker = 0;       ///< issuing worker.
  size_t request = 0;      ///< per-worker index (closed) / global (open).
  size_t query_index = 0;  ///< index into the workload's query pool.
  uint64_t start_ns = 0;   ///< offset from run start.
  uint64_t duration_ns = 0;
  bool ok = false;         ///< the reply's "ok" field.
  std::string code;        ///< wire code when !ok ("resource_exhausted", ...).
  std::string report;      ///< reply report text (when capture_replies).
  std::string error;       ///< reply error text (when capture_replies).
};

/// One worker's log. Owned and written by exactly one thread during a
/// run, which is what makes it lock-free by construction.
struct WorkerLog {
  std::vector<LatencyRecord> records;
};

/// Nearest-rank percentile over an ascending-sorted sample vector:
/// the value at rank ceil(pct/100 * N) (1-based), clamped into range.
/// Exact — no interpolation — so small fixtures pin it by hand.
/// Returns 0 for an empty vector.
double PercentileNearestRank(const std::vector<double>& sorted_ascending,
                             double pct);

struct LatencyStats {
  size_t count = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
};

/// Sorts a copy of `samples_ms` and fills the stats (all zero for an
/// empty input).
LatencyStats ComputeLatencyStats(std::vector<double> samples_ms);

}  // namespace loadgen
}  // namespace mesa

#endif  // MESA_LOADGEN_LATENCY_H_
