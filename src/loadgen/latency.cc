#include "loadgen/latency.h"

#include <algorithm>
#include <cmath>

namespace mesa {
namespace loadgen {

double PercentileNearestRank(const std::vector<double>& sorted_ascending,
                             double pct) {
  if (sorted_ascending.empty()) return 0.0;
  const double n = static_cast<double>(sorted_ascending.size());
  size_t rank = static_cast<size_t>(std::ceil(pct / 100.0 * n));
  if (rank < 1) rank = 1;
  if (rank > sorted_ascending.size()) rank = sorted_ascending.size();
  return sorted_ascending[rank - 1];
}

LatencyStats ComputeLatencyStats(std::vector<double> samples_ms) {
  LatencyStats stats;
  if (samples_ms.empty()) return stats;
  std::sort(samples_ms.begin(), samples_ms.end());
  stats.count = samples_ms.size();
  stats.p50_ms = PercentileNearestRank(samples_ms, 50.0);
  stats.p95_ms = PercentileNearestRank(samples_ms, 95.0);
  stats.p99_ms = PercentileNearestRank(samples_ms, 99.0);
  double sum = 0.0;
  for (double v : samples_ms) sum += v;
  stats.mean_ms = sum / static_cast<double>(samples_ms.size());
  stats.max_ms = samples_ms.back();
  return stats;
}

}  // namespace loadgen
}  // namespace mesa
